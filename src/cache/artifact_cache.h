#ifndef AQE_CACHE_ARTIFACT_CACHE_H_
#define AQE_CACHE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/function_handle.h"
#include "exec/morsel.h"
#include "index/access_path.h"
#include "jit/jit_compiler.h"
#include "storage/column.h"
#include "vm/bytecode.h"

namespace aqe {

/// Counters of the plan-keyed artifact cache (QueryEngine's stats API).
/// `bytes`/`entries` are resident footprint; the rest are monotonic.
struct ArtifactCacheStats {
  uint64_t entry_hits = 0;      ///< Submit found the plan's entry
  uint64_t entry_misses = 0;    ///< Submit created a fresh entry
  uint64_t bytecode_hits = 0;   ///< pipeline reused cached bytecode as-is
  uint64_t patched_hits = 0;    ///< ...via the constant-patch table
  uint64_t bytecode_misses = 0; ///< pipeline had to translate
  uint64_t code_hits = 0;       ///< pipeline seeded cached machine code
  uint64_t publishes = 0;       ///< artifacts written back
  uint64_t evictions = 0;       ///< entries dropped by the LRU byte budget
  /// Completed queries that fed their observed service time back into
  /// their plan's admission-cost EWMA (CacheEntry::ewma_service_ms) — the
  /// cold-query estimate WFQ admission charges converges as this grows.
  uint64_t cost_feedback_updates = 0;
  uint64_t bytes = 0;
  uint64_t entries = 0;
};

/// Difference of the monotonic counters (phase deltas: snapshot before a
/// phase, subtract after). `bytes`/`entries` describe the current residency
/// and keep the left-hand side's values.
inline ArtifactCacheStats operator-(const ArtifactCacheStats& a,
                                    const ArtifactCacheStats& b) {
  ArtifactCacheStats d = a;
  d.entry_hits -= b.entry_hits;
  d.entry_misses -= b.entry_misses;
  d.bytecode_hits -= b.bytecode_hits;
  d.patched_hits -= b.patched_hits;
  d.bytecode_misses -= b.bytecode_misses;
  d.code_hits -= b.code_hits;
  d.publishes -= b.publishes;
  d.evictions -= b.evictions;
  d.cost_feedback_updates -= b.cost_feedback_updates;
  return d;
}

/// One JIT compilation kept alive by shared ownership: the cache holds a
/// reference while the artifact is resident, every query that uses or
/// produced the code holds another — so LRU eviction can never free machine
/// code a query is still executing.
struct CachedCode {
  std::unique_ptr<CompiledModule> module;
  WorkerFn fn = nullptr;
  uint64_t approx_bytes = 0;
};

/// Machine code compiled for one exact constant vector (code embeds the
/// literals; only the bytecode is patchable). A pipeline keeps a small set
/// of these so queries alternating between a few parameter values don't
/// evict each other's compilations.
struct CodeVariant {
  std::vector<uint64_t> constants;
  std::shared_ptr<CachedCode> unopt;
  std::shared_ptr<CachedCode> opt;
  uint64_t last_use = 0;  ///< PipelineArtifact::variant_clock at last touch
};

/// Cached artifacts of one pipeline, filled in as stages complete. All
/// fields are guarded by the owning CacheEntry's mutex.
struct PipelineArtifact {
  /// Position-independent bytecode (dispatch = kDefault). Shared directly
  /// on exact-constant hits; cloned + patched for literal-only variants.
  std::shared_ptr<const BcProgram> bytecode;
  /// The pipeline-constant values `bytecode` was translated with (the
  /// pipeline's slice of the inserting query's fingerprint constants).
  std::vector<uint64_t> bytecode_constants;
  bool patchable = false;
  std::vector<uint32_t> patch_slots;  ///< per-constant constant_pool index
  /// Bind-time validation: the artifact only fits when the scanned column
  /// types match (temp-table schemas are only knowable at run time).
  std::vector<DataType> column_types;
  uint64_t instructions = 0;  ///< LLVM instruction count (cost model input)
  /// Runtime-call density of the worker's loop body (cost model input;
  /// recorded at first publish so cache hits skip IR generation entirely).
  double runtime_call_fraction = 0;

  /// Machine-code variants, keyed by the exact constant vector each embeds.
  /// Bounded: publishing an unseen variant when full evicts the
  /// least-recently-used one. The bytecode slot above needs no such map —
  /// one program patch-shares across all literal variants.
  static constexpr size_t kMaxCodeVariants = 4;
  std::vector<CodeVariant> code_variants;
  uint64_t variant_clock = 0;  ///< bumped on every variant touch

  /// Linear scan (the map is tiny and the entry mutex is already held).
  CodeVariant* FindVariant(const std::vector<uint64_t>& constants) {
    for (CodeVariant& v : code_variants) {
      if (v.constants == constants) return &v;
    }
    return nullptr;
  }

  /// One cached scan-pruning decision (src/index/access_path.h). Keyed by
  /// the pipeline's constant slice *plus* an auxiliary hash over the run's
  /// string literals and predicate bitmaps: bytecode patch-shares across
  /// literal variants and LIKE patterns are not constants at all, so the
  /// constants alone under-key the pruning outcome (two runs sharing this
  /// artifact may select very different rows).
  struct PruningVariant {
    std::vector<uint64_t> constants;
    uint64_t aux_hash = 0;
    std::shared_ptr<const ScanDomain> domain;  ///< null = full scan decided
    PruningStats stats;
    uint64_t last_use = 0;  ///< pruning_clock at last touch
  };
  static constexpr size_t kMaxPruningVariants = 4;
  std::vector<PruningVariant> pruning_variants;
  uint64_t pruning_clock = 0;

  PruningVariant* FindPruning(const std::vector<uint64_t>& constants,
                              uint64_t aux_hash) {
    for (PruningVariant& v : pruning_variants) {
      if (v.aux_hash == aux_hash && v.constants == constants) return &v;
    }
    return nullptr;
  }

  ExecMode best_mode = ExecMode::kBytecode;  ///< best mode ever reached
  uint64_t observed_tuples = 0;              ///< morsel stats, last run
  double observed_seconds = 0;
};

/// One cached plan. Entries are handed out as shared_ptr: eviction only
/// unlinks them from the cache index — queries mid-flight keep using (and
/// publishing into) their snapshot safely.
struct CacheEntry {
  uint64_t key = 0;  ///< ArtifactCacheKey(fingerprint, translator options)
  std::string plan_name;

  std::mutex mu;  ///< guards `pipelines` and the service-time feedback
  std::vector<PipelineArtifact> pipelines;

  /// Admission cost feedback: EWMA of completed runs' observed service
  /// time (queue wait excluded). Replaces the flat cold-query default in
  /// the engine's weighted-fair admission once `observed_queries > 0`, so
  /// cold estimates converge per plan fingerprint.
  double ewma_service_ms = 0;
  /// Admission memory feedback: EWMA of completed runs' tracked peak bytes.
  /// The engine checks it against the query class's byte budget at Submit,
  /// so a known-oversized fingerprint is rejected before it queues.
  double ewma_peak_bytes = 0;
  uint64_t observed_queries = 0;
};

/// Concurrent plan-fingerprint → artifact map: sharded locks, per-shard LRU
/// under a global byte budget, hit/miss/evict counters. See
/// src/cache/DESIGN.md for the engine/controller handshake.
class ArtifactCache {
 public:
  static constexpr int kNumShards = 8;
  static constexpr uint64_t kDefaultByteBudget = 256ull << 20;

  explicit ArtifactCache(uint64_t byte_budget = kDefaultByteBudget);

  /// Returns the entry for `key`, creating it (with `num_pipelines` empty
  /// artifact slots) on first sight. Counts an entry hit or miss and bumps
  /// the entry's LRU position.
  std::shared_ptr<CacheEntry> Intern(uint64_t key, size_t num_pipelines,
                                     const std::string& plan_name);

  /// Lookup without creating; nullptr on miss. Does not touch counters
  /// (introspection / tests).
  std::shared_ptr<CacheEntry> Peek(uint64_t key) const;

  /// Records that artifacts worth `delta` bytes were added to (or, negative,
  /// replaced in) `entry`, then enforces the byte budget by evicting
  /// least-recently-used entries (the most recent entry is never evicted).
  void OnBytesChanged(const CacheEntry& entry, int64_t delta);

  void set_byte_budget(uint64_t bytes);
  uint64_t byte_budget() const { return byte_budget_.load(); }

  /// Evicts every entry (ops flush / deterministic eviction in tests).
  /// In-flight queries keep their entries alive via shared ownership.
  void Clear();

  /// Called with each evicted entry's key, outside any shard lock (the
  /// engine routes this into the regression sentinel so a post-eviction
  /// slowdown can name its cause). Set once, before traffic — not
  /// synchronized against concurrent eviction.
  void set_eviction_listener(std::function<void(uint64_t)> listener) {
    eviction_listener_ = std::move(listener);
  }

  ArtifactCacheStats stats() const;

  /// Zeroes the monotonic counters (residency is untouched — artifacts stay
  /// cached). Benches call this between a cold and a warm phase so warm
  /// hit/miss numbers aren't polluted by cold-phase traffic.
  void ResetStats();

  // Pipeline-granular counters (bumped by the engine integration).
  void CountBytecodeHit(bool patched) {
    patched ? ++patched_hits_ : ++bytecode_hits_;
  }
  void CountBytecodeMiss() { ++bytecode_misses_; }
  void CountCodeHit() { ++code_hits_; }
  void CountPublish() { ++publishes_; }
  void CountCostFeedback() { ++cost_feedback_updates_; }

 private:
  /// A resident entry's cache-side bookkeeping, all under the shard lock
  /// (entry *contents* stay under the entry mutex). The stored iterator
  /// makes the per-submission LRU bump O(1).
  struct Resident {
    std::shared_ptr<CacheEntry> entry;
    std::list<uint64_t>::iterator lru_pos;
    uint64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Resident> map;
    std::list<uint64_t> lru;  ///< keys, most recent first
    uint64_t bytes = 0;
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % kNumShards]; }
  const Shard& ShardFor(uint64_t key) const { return shards_[key % kNumShards]; }
  /// Evicts into `victims` (keys, for the listener — invoked by the caller
  /// after the shard lock is released).
  void EvictOverBudgetLocked(Shard* shard, std::vector<uint64_t>* victims);
  void NotifyEvicted(const std::vector<uint64_t>& victims) const;

  Shard shards_[kNumShards];
  std::atomic<uint64_t> byte_budget_;
  std::function<void(uint64_t)> eviction_listener_;

  mutable std::atomic<uint64_t> entry_hits_{0}, entry_misses_{0};
  std::atomic<uint64_t> bytecode_hits_{0}, patched_hits_{0};
  std::atomic<uint64_t> bytecode_misses_{0}, code_hits_{0};
  std::atomic<uint64_t> publishes_{0}, evictions_{0};
  std::atomic<uint64_t> cost_feedback_updates_{0};
};

/// Approximate resident footprint of a translated program.
uint64_t BcProgramBytes(const BcProgram& program);

}  // namespace aqe

#endif  // AQE_CACHE_ARTIFACT_CACHE_H_
