#include "cache/artifact_cache.h"

#include <algorithm>

#include "common/status.h"

namespace aqe {

uint64_t BcProgramBytes(const BcProgram& program) {
  return sizeof(BcProgram) + program.code.size() * sizeof(BcInstruction) +
         program.constant_pool.size() * sizeof(BcProgram::PoolEntry) +
         program.literal_pool.size() * sizeof(uint64_t) +
         program.arg_offsets.size() * sizeof(uint32_t);
}

ArtifactCache::ArtifactCache(uint64_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<CacheEntry> ArtifactCache::Intern(
    uint64_t key, size_t num_pipelines, const std::string& plan_name) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    ++entry_hits_;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return it->second.entry;
  }
  ++entry_misses_;
  auto entry = std::make_shared<CacheEntry>();
  entry->key = key;
  entry->plan_name = plan_name;
  entry->pipelines.resize(num_pipelines);
  shard.lru.push_front(key);
  shard.map.emplace(key, Resident{entry, shard.lru.begin(), 0});
  return entry;
}

std::shared_ptr<CacheEntry> ArtifactCache::Peek(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second.entry;
}

void ArtifactCache::OnBytesChanged(const CacheEntry& entry, int64_t delta) {
  std::vector<uint64_t> victims;
  {
    Shard& shard = ShardFor(entry.key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(entry.key);
    // Publishing into an evicted entry — including one whose key has since
    // been re-interned as a *different* CacheEntry — must not be charged to
    // the shard: those artifacts die with the queries holding the old entry.
    // The identity check makes accounting follow the object, not the key.
    if (it == shard.map.end() || it->second.entry.get() != &entry) return;
    int64_t updated = static_cast<int64_t>(it->second.bytes) + delta;
    it->second.bytes = static_cast<uint64_t>(std::max<int64_t>(updated, 0));
    int64_t total = static_cast<int64_t>(shard.bytes) + delta;
    shard.bytes = static_cast<uint64_t>(std::max<int64_t>(total, 0));
    EvictOverBudgetLocked(&shard, &victims);
  }
  NotifyEvicted(victims);
}

void ArtifactCache::set_byte_budget(uint64_t bytes) {
  byte_budget_.store(bytes);
  std::vector<uint64_t> victims;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictOverBudgetLocked(&shard, &victims);
  }
  NotifyEvicted(victims);
}

void ArtifactCache::Clear() {
  std::vector<uint64_t> victims;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const uint64_t key : shard.lru) victims.push_back(key);
    evictions_ += shard.map.size();
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
  NotifyEvicted(victims);
}

void ArtifactCache::EvictOverBudgetLocked(Shard* shard,
                                          std::vector<uint64_t>* victims) {
  const uint64_t shard_budget =
      std::max<uint64_t>(byte_budget_.load() / kNumShards, 1);
  // Evict from the cold end; the most recently touched entry always stays
  // (a single over-budget plan must remain usable).
  while (shard->bytes > shard_budget && shard->lru.size() > 1) {
    uint64_t victim = shard->lru.back();
    shard->lru.pop_back();
    auto it = shard->map.find(victim);
    AQE_CHECK(it != shard->map.end());
    shard->bytes -= std::min(shard->bytes, it->second.bytes);
    shard->map.erase(it);
    ++evictions_;
    victims->push_back(victim);
  }
}

void ArtifactCache::NotifyEvicted(const std::vector<uint64_t>& victims) const {
  if (!eviction_listener_) return;
  for (const uint64_t key : victims) eviction_listener_(key);
}

ArtifactCacheStats ArtifactCache::stats() const {
  ArtifactCacheStats s;
  s.entry_hits = entry_hits_.load();
  s.entry_misses = entry_misses_.load();
  s.bytecode_hits = bytecode_hits_.load();
  s.patched_hits = patched_hits_.load();
  s.bytecode_misses = bytecode_misses_.load();
  s.code_hits = code_hits_.load();
  s.publishes = publishes_.load();
  s.evictions = evictions_.load();
  s.cost_feedback_updates = cost_feedback_updates_.load();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.bytes += shard.bytes;
    s.entries += shard.map.size();
  }
  return s;
}

void ArtifactCache::ResetStats() {
  entry_hits_.store(0);
  entry_misses_.store(0);
  bytecode_hits_.store(0);
  patched_hits_.store(0);
  bytecode_misses_.store(0);
  code_hits_.store(0);
  publishes_.store(0);
  evictions_.store(0);
  cost_feedback_updates_.store(0);
}

}  // namespace aqe
