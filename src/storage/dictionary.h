#ifndef AQE_STORAGE_DICTIONARY_H_
#define AQE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aqe {

/// Order-preserving string dictionary. String columns are stored as I32 codes
/// into a per-column Dictionary; string predicates are evaluated against the
/// dictionary once per query and turned into integer comparisons or match
/// bitmaps, which is how HyPer executes them and keeps the generated code's
/// type system small (see DESIGN.md substitutions).
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `s`, inserting it if new.
  int32_t GetOrAdd(std::string_view s);

  /// Returns the code for `s` or -1 if absent.
  int32_t Find(std::string_view s) const;

  /// Returns the string for a code.
  const std::string& Get(int32_t code) const;

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// Builds a byte-per-code bitmap where bitmap[code] == 1 iff the dictionary
  /// string starts with `prefix` (the LIKE 'x%' pattern).
  std::vector<uint8_t> MatchPrefix(std::string_view prefix) const;

  /// Bitmap for "string contains `infix`" (LIKE '%x%').
  std::vector<uint8_t> MatchContains(std::string_view infix) const;

  /// Bitmap for membership in an explicit value list (IN (...)).
  std::vector<uint8_t> MatchIn(const std::vector<std::string>& values) const;

  /// Generic pre-evaluation hook: bitmap[code] == 1 iff
  /// `predicate(Get(code))` — one evaluation per *distinct* string, however
  /// expensive the predicate (the LIKE pattern matchers plug in here).
  std::vector<uint8_t> MatchBitmap(
      const std::function<bool(std::string_view)>& predicate) const;

  /// True when codes are assigned in lexicographic string order, i.e.
  /// code_a < code_b  <=>  Get(code_a) < Get(code_b). Incremental GetOrAdd
  /// assigns insertion order; SortCodes() (via Table::SortDictionaries)
  /// establishes the invariant after bulk load. O(1): the flag is
  /// maintained on every insert (plan lowering consults it per query).
  bool is_sorted() const { return sorted_; }

  /// Lexicographically reorders the dictionary and returns the old-code ->
  /// new-code remap the owner must apply to every encoded column value.
  /// After this, is_sorted() holds (until further GetOrAdd inserts).
  std::vector<int32_t> SortCodes();

  /// The [lo, hi) code range of strings starting with `prefix`. Only
  /// meaningful on a sorted dictionary, where it turns a LIKE-prefix
  /// predicate into two integer compares on the code column.
  std::pair<int32_t, int32_t> PrefixRange(std::string_view prefix) const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
  bool sorted_ = true;  ///< empty/ordered-insert dictionaries are sorted
};

}  // namespace aqe

#endif  // AQE_STORAGE_DICTIONARY_H_
