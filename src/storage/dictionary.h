#ifndef AQE_STORAGE_DICTIONARY_H_
#define AQE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aqe {

/// Order-preserving string dictionary. String columns are stored as I32 codes
/// into a per-column Dictionary; string predicates are evaluated against the
/// dictionary once per query and turned into integer comparisons or match
/// bitmaps, which is how HyPer executes them and keeps the generated code's
/// type system small (see DESIGN.md substitutions).
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `s`, inserting it if new.
  int32_t GetOrAdd(std::string_view s);

  /// Returns the code for `s` or -1 if absent.
  int32_t Find(std::string_view s) const;

  /// Returns the string for a code.
  const std::string& Get(int32_t code) const;

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// Builds a byte-per-code bitmap where bitmap[code] == 1 iff the dictionary
  /// string starts with `prefix` (the LIKE 'x%' pattern).
  std::vector<uint8_t> MatchPrefix(std::string_view prefix) const;

  /// Bitmap for "string contains `infix`" (LIKE '%x%').
  std::vector<uint8_t> MatchContains(std::string_view infix) const;

  /// Bitmap for membership in an explicit value list (IN (...)).
  std::vector<uint8_t> MatchIn(const std::vector<std::string>& values) const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace aqe

#endif  // AQE_STORAGE_DICTIONARY_H_
