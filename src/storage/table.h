#ifndef AQE_STORAGE_TABLE_H_
#define AQE_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "storage/dictionary.h"

namespace aqe {

struct TableIndexes;  // src/index/table_index.h

/// An in-memory columnar table. Columns are appended at schema-definition
/// time; rows are appended column-wise by the data generator.
class Table {
 public:
  explicit Table(std::string name);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }

  /// Adds a column; returns its index. If `dictionary` is true the column is
  /// a dictionary-encoded string column (type must be kI32).
  int AddColumn(std::string name, DataType type, bool dictionary = false);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  uint64_t num_rows() const;

  /// Column index by name; CHECK-fails if absent.
  int ColumnIndex(const std::string& name) const;

  Column& column(int index);
  const Column& column(int index) const;
  Column& column(const std::string& name) { return column(ColumnIndex(name)); }
  const Column& column(const std::string& name) const {
    return column(ColumnIndex(name));
  }

  /// Dictionary for a string column (CHECK-fails for non-dictionary columns).
  Dictionary& dictionary(int index);
  const Dictionary& dictionary(int index) const;
  bool has_dictionary(int index) const;

  /// Establishes the order-preserving invariant on every dictionary column:
  /// sorts each dictionary lexicographically and rewrites the column's
  /// codes in place. Called once after bulk load (further GetOrAdd inserts
  /// would break the invariant again). Enables LIKE-prefix predicates to
  /// lower to integer range compares on the code column.
  void SortDictionaries();

  /// Secondary index structures (src/index/: zone maps, dictionary-code
  /// CSR indexes, inverted token indexes), built once after bulk load and
  /// immutable thereafter. Null until attached; scan pruning is simply
  /// skipped for tables without indexes.
  void set_indexes(std::shared_ptr<const TableIndexes> indexes) {
    indexes_ = std::move(indexes);
  }
  const TableIndexes* indexes() const { return indexes_.get(); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<std::unique_ptr<Dictionary>> dictionaries_;  // nullptr if none
  std::unordered_map<std::string, int> column_index_;
  std::shared_ptr<const TableIndexes> indexes_;
};

/// A named collection of tables (the "database").
class Catalog {
 public:
  /// Creates (and owns) a table. Name must be unique.
  Table* CreateTable(const std::string& name);

  /// Lookup; CHECK-fails if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace aqe

#endif  // AQE_STORAGE_TABLE_H_
