#ifndef AQE_STORAGE_COLUMN_H_
#define AQE_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqe {

/// Column value types. Strings are dictionary-encoded as I32 codes; dates are
/// I32 days since 1970-01-01; decimals are I64 scaled by 100 (see
/// common/fixed_point.h).
enum class DataType : uint8_t {
  kI32,
  kI64,
  kF64,
};

/// Size in bytes of one value of the given type.
inline int DataTypeSize(DataType type) {
  switch (type) {
    case DataType::kI32: return 4;
    case DataType::kI64: return 8;
    case DataType::kF64: return 8;
  }
  AQE_UNREACHABLE("bad DataType");
}

/// Human-readable type name.
const char* DataTypeName(DataType type);

/// A typed, contiguous, in-memory column. The raw data pointer is exposed so
/// generated code (JIT and bytecode alike) can scan it directly.
class Column {
 public:
  Column(std::string name, DataType type);

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  uint64_t size() const { return size_; }

  /// Raw pointer to the first value. Stable until the next Append/Reserve.
  const void* data() const { return data_.data(); }
  void* mutable_data() { return data_.data(); }

  void Reserve(uint64_t rows);

  void AppendI32(int32_t v);
  void AppendI64(int64_t v);
  void AppendF64(double v);

  int32_t GetI32(uint64_t row) const;
  int64_t GetI64(uint64_t row) const;
  double GetF64(uint64_t row) const;

  /// Returns the value widened to int64 (F64 columns CHECK-fail).
  int64_t GetAsI64(uint64_t row) const;

 private:
  std::string name_;
  DataType type_;
  uint64_t size_ = 0;
  std::vector<uint8_t> data_;  // raw bytes, element i at i * DataTypeSize
};

}  // namespace aqe

#endif  // AQE_STORAGE_COLUMN_H_
