#include "storage/column.h"

#include <cstring>

namespace aqe {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kI32: return "i32";
    case DataType::kI64: return "i64";
    case DataType::kF64: return "f64";
  }
  AQE_UNREACHABLE("bad DataType");
}

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type) {}

void Column::Reserve(uint64_t rows) {
  data_.reserve(rows * DataTypeSize(type_));
}

void Column::AppendI32(int32_t v) {
  AQE_CHECK(type_ == DataType::kI32);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  data_.insert(data_.end(), p, p + sizeof(v));
  ++size_;
}

void Column::AppendI64(int64_t v) {
  AQE_CHECK(type_ == DataType::kI64);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  data_.insert(data_.end(), p, p + sizeof(v));
  ++size_;
}

void Column::AppendF64(double v) {
  AQE_CHECK(type_ == DataType::kF64);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  data_.insert(data_.end(), p, p + sizeof(v));
  ++size_;
}

int32_t Column::GetI32(uint64_t row) const {
  AQE_CHECK(type_ == DataType::kI32 && row < size_);
  int32_t v;
  std::memcpy(&v, data_.data() + row * 4, 4);
  return v;
}

int64_t Column::GetI64(uint64_t row) const {
  AQE_CHECK(type_ == DataType::kI64 && row < size_);
  int64_t v;
  std::memcpy(&v, data_.data() + row * 8, 8);
  return v;
}

double Column::GetF64(uint64_t row) const {
  AQE_CHECK(type_ == DataType::kF64 && row < size_);
  double v;
  std::memcpy(&v, data_.data() + row * 8, 8);
  return v;
}

int64_t Column::GetAsI64(uint64_t row) const {
  switch (type_) {
    case DataType::kI32: return GetI32(row);
    case DataType::kI64: return GetI64(row);
    case DataType::kF64: AQE_UNREACHABLE("GetAsI64 on f64 column");
  }
  AQE_UNREACHABLE("bad DataType");
}

}  // namespace aqe
