#include "storage/table.h"

namespace aqe {

Table::Table(std::string name) : name_(std::move(name)) {}

int Table::AddColumn(std::string name, DataType type, bool dictionary) {
  AQE_CHECK_MSG(column_index_.find(name) == column_index_.end(),
                "duplicate column name");
  if (dictionary) AQE_CHECK_MSG(type == DataType::kI32, "dict column not i32");
  int index = static_cast<int>(columns_.size());
  column_index_.emplace(name, index);
  columns_.push_back(std::make_unique<Column>(std::move(name), type));
  dictionaries_.push_back(dictionary ? std::make_unique<Dictionary>()
                                     : nullptr);
  return index;
}

uint64_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_[0]->size();
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = column_index_.find(name);
  AQE_CHECK_MSG(it != column_index_.end(), name.c_str());
  return it->second;
}

Column& Table::column(int index) {
  AQE_CHECK(index >= 0 && index < num_columns());
  return *columns_[static_cast<size_t>(index)];
}

const Column& Table::column(int index) const {
  AQE_CHECK(index >= 0 && index < num_columns());
  return *columns_[static_cast<size_t>(index)];
}

Dictionary& Table::dictionary(int index) {
  AQE_CHECK(has_dictionary(index));
  return *dictionaries_[static_cast<size_t>(index)];
}

const Dictionary& Table::dictionary(int index) const {
  AQE_CHECK(has_dictionary(index));
  return *dictionaries_[static_cast<size_t>(index)];
}

bool Table::has_dictionary(int index) const {
  AQE_CHECK(index >= 0 && index < num_columns());
  return dictionaries_[static_cast<size_t>(index)] != nullptr;
}

void Table::SortDictionaries() {
  for (size_t c = 0; c < columns_.size(); ++c) {
    Dictionary* dict = dictionaries_[c].get();
    if (dict == nullptr || dict->is_sorted()) continue;
    const std::vector<int32_t> remap = dict->SortCodes();
    Column& col = *columns_[c];
    auto* codes = static_cast<int32_t*>(col.mutable_data());
    for (uint64_t r = 0; r < col.size(); ++r) {
      codes[r] = remap[static_cast<size_t>(codes[r])];
    }
  }
}

Table* Catalog::CreateTable(const std::string& name) {
  AQE_CHECK_MSG(!HasTable(name), "duplicate table");
  auto table = std::make_unique<Table>(name);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  AQE_CHECK_MSG(it != tables_.end(), name.c_str());
  return it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  AQE_CHECK_MSG(it != tables_.end(), name.c_str());
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

}  // namespace aqe
