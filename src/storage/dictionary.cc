#include "storage/dictionary.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"
#include "simd/simd.h"

namespace aqe {

int32_t Dictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(strings_.size());
  if (code > 0 && sorted_ && s < strings_.back()) sorted_ = false;
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::Get(int32_t code) const {
  AQE_CHECK(code >= 0 && code < size());
  return strings_[static_cast<size_t>(code)];
}

std::vector<uint8_t> Dictionary::MatchPrefix(std::string_view prefix) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (size_t i = 0; i < strings_.size(); ++i) {
    bitmap[i] = strings_[i].compare(0, prefix.size(), prefix) == 0 ? 1 : 0;
  }
  return bitmap;
}

std::vector<uint8_t> Dictionary::MatchContains(std::string_view infix) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  if (infix.empty()) {
    std::fill(bitmap.begin(), bitmap.end(), 1);
    return bitmap;
  }
  for (size_t i = 0; i < strings_.size(); ++i) {
    bitmap[i] = FindSubstr(strings_[i].data(), strings_[i].size(),
                           infix.data(), infix.size()) != SIZE_MAX
                    ? 1
                    : 0;
  }
  return bitmap;
}

std::vector<uint8_t> Dictionary::MatchIn(
    const std::vector<std::string>& values) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (const std::string& v : values) {
    int32_t code = Find(v);
    if (code >= 0) bitmap[static_cast<size_t>(code)] = 1;
  }
  return bitmap;
}

std::vector<uint8_t> Dictionary::MatchBitmap(
    const std::function<bool(std::string_view)>& predicate) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (size_t i = 0; i < strings_.size(); ++i) {
    bitmap[i] = predicate(strings_[i]) ? 1 : 0;
  }
  return bitmap;
}

std::vector<int32_t> Dictionary::SortCodes() {
  const size_t n = strings_.size();
  std::vector<int32_t> order(n);  // new code -> old code
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
    return strings_[static_cast<size_t>(a)] < strings_[static_cast<size_t>(b)];
  });
  std::vector<std::string> sorted;
  sorted.reserve(n);
  std::vector<int32_t> remap(n);  // old code -> new code
  for (size_t new_code = 0; new_code < n; ++new_code) {
    sorted.push_back(std::move(strings_[static_cast<size_t>(order[new_code])]));
    remap[static_cast<size_t>(order[new_code])] =
        static_cast<int32_t>(new_code);
  }
  strings_ = std::move(sorted);
  index_.clear();
  for (size_t code = 0; code < n; ++code) {
    index_.emplace(strings_[code], static_cast<int32_t>(code));
  }
  sorted_ = true;
  return remap;
}

std::pair<int32_t, int32_t> Dictionary::PrefixRange(
    std::string_view prefix) const {
  auto lo = std::lower_bound(
      strings_.begin(), strings_.end(), prefix,
      [](const std::string& s, std::string_view p) {
        return std::string_view(s) < p;
      });
  auto hi = std::upper_bound(
      lo, strings_.end(), prefix,
      [](std::string_view p, const std::string& s) {
        return std::string_view(s).substr(0, p.size()) > p;
      });
  return {static_cast<int32_t>(lo - strings_.begin()),
          static_cast<int32_t>(hi - strings_.begin())};
}

}  // namespace aqe
