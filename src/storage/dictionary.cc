#include "storage/dictionary.h"

#include "common/status.h"

namespace aqe {

int32_t Dictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::Get(int32_t code) const {
  AQE_CHECK(code >= 0 && code < size());
  return strings_[static_cast<size_t>(code)];
}

std::vector<uint8_t> Dictionary::MatchPrefix(std::string_view prefix) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (size_t i = 0; i < strings_.size(); ++i) {
    bitmap[i] = strings_[i].compare(0, prefix.size(), prefix) == 0 ? 1 : 0;
  }
  return bitmap;
}

std::vector<uint8_t> Dictionary::MatchContains(std::string_view infix) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (size_t i = 0; i < strings_.size(); ++i) {
    bitmap[i] = strings_[i].find(infix) != std::string::npos ? 1 : 0;
  }
  return bitmap;
}

std::vector<uint8_t> Dictionary::MatchIn(
    const std::vector<std::string>& values) const {
  std::vector<uint8_t> bitmap(strings_.size(), 0);
  for (const std::string& v : values) {
    int32_t code = Find(v);
    if (code >= 0) bitmap[static_cast<size_t>(code)] = 1;
  }
  return bitmap;
}

}  // namespace aqe
