#ifndef AQE_PLAN_EXPR_H_
#define AQE_PLAN_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace aqe {

struct LikePredicate;

/// Value types inside query expressions. Integer columns (i32 dates, dict
/// codes, i64 keys/decimals) are widened to I64 at scan time; comparisons
/// produce Bool; floating point is F64.
enum class ExprType : uint8_t { kI64, kF64, kBool };

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kSlot,        ///< reference to a pipeline slot (see PipelineSpec)
  kConstI64,    ///< 64-bit integer / decimal / date / dict-code constant
  kConstF64,    ///< double constant
  kAdd, kSub, kMul, kDiv,                ///< plain i64 arithmetic
  kCheckedAdd, kCheckedSub, kCheckedMul, ///< overflow-checked i64 (§IV-F)
  kFAdd, kFSub, kFMul, kFDiv,            ///< f64 arithmetic
  kEq, kNe, kLt, kLe, kGt, kGe,          ///< i64 comparisons -> Bool
  kAnd, kOr, kNot,                       ///< Bool logic
  kBitmapTest,  ///< bitmap[child-as-index] != 0 (dictionary predicates)
  kLike,        ///< like_pred->Matches(child-as-dict-code) — the per-row
                ///< runtime-call path of LIKE (src/strings/); the bitmap
                ///< path lowers to kBitmapTest / code-range compares instead
  kCastF64,     ///< i64 -> f64
  kBoolToI64,   ///< Bool -> 0/1 as i64 (year arithmetic, conditional sums)
};

/// A query expression tree over pipeline slots. Plain data; compiled to
/// LLVM IR by codegen/expr_compiler and interpreted by the Volcano and
/// vectorized baselines.
struct Expr {
  ExprKind kind;
  ExprType type;
  int slot = -1;                    // kSlot
  int64_t i64_value = 0;            // kConstI64
  double f64_value = 0;             // kConstF64
  const uint8_t* bitmap = nullptr;  // kBitmapTest (not owned)
  const LikePredicate* like_pred = nullptr;  // kLike (not owned)
  std::vector<std::unique_ptr<Expr>> children;
};

using ExprPtr = std::unique_ptr<Expr>;

// --- factory helpers ---------------------------------------------------------

ExprPtr Slot(int slot, ExprType type = ExprType::kI64);
ExprPtr I64(int64_t value);
ExprPtr F64(double value);
ExprPtr Binary(ExprKind kind, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr CheckedAdd(ExprPtr lhs, ExprPtr rhs);
ExprPtr CheckedSub(ExprPtr lhs, ExprPtr rhs);
ExprPtr CheckedMul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr child);
ExprPtr BitmapTest(const uint8_t* bitmap, ExprPtr code);
ExprPtr LikeMatch(const LikePredicate* pred, ExprPtr code);
ExprPtr CastF64(ExprPtr child);
ExprPtr BoolToI64(ExprPtr child);

/// Deep copy (query builders occasionally reuse sub-expressions).
ExprPtr CloneExpr(const Expr& expr);

/// Evaluates the expression on a materialized row of i64 slots (doubles
/// bit-cast). Shared reference semantics for baselines and tests.
int64_t EvalExpr(const Expr& expr, const int64_t* slots);

/// Number of expression nodes (for tests / diagnostics).
int ExprSize(const Expr& expr);

}  // namespace aqe

#endif  // AQE_PLAN_EXPR_H_
