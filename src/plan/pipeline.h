#ifndef AQE_PLAN_PIPELINE_H_
#define AQE_PLAN_PIPELINE_H_

#include <string>
#include <variant>
#include <vector>

#include "plan/expr.h"
#include "storage/column.h"

namespace aqe {

enum class JoinKind : uint8_t { kInner, kSemi, kAnti };

/// In-pipeline operators, applied per tuple in order. Each tuple flows as a
/// growing vector of slots: the scan materializes `scan_columns` into slots
/// 0..k-1; kCompute appends one slot; an inner kProbe appends the build
/// payload slots.
struct OpFilter {
  ExprPtr predicate;  ///< Bool; tuples failing it are dropped
};
struct OpCompute {
  ExprPtr expr;  ///< appended as a new slot
};
struct OpProbe {
  int ht = 0;     ///< QueryProgram hash-table id
  ExprPtr key;    ///< i64 probe key
  int payload_slots = 0;  ///< build payload values appended (inner only)
  JoinKind kind = JoinKind::kInner;
};
using PipelineOp = std::variant<OpFilter, OpCompute, OpProbe>;

/// Aggregate function of one SinkAgg item.
enum class AggKind : uint8_t { kSum, kCount, kMin, kMax };

struct AggItem {
  AggKind kind;
  ExprPtr value;        ///< ignored for kCount
  bool checked = true;  ///< overflow-checked update (sums)
};

/// Pipeline sinks (the "breaker" side of the pipeline).
struct SinkBuild {
  int ht = 0;
  ExprPtr key;
  std::vector<ExprPtr> payload;
};
struct SinkAgg {
  int agg = 0;   ///< QueryProgram aggregation id
  ExprPtr key;   ///< packed group key (i64)
  std::vector<AggItem> items;
};
struct SinkOutput {
  int output = 0;  ///< QueryProgram output-buffer id
  std::vector<ExprPtr> values;
};
using PipelineSink = std::variant<SinkBuild, SinkAgg, SinkOutput>;

/// One query pipeline (§III-A): a scan over a table (base or temporary),
/// a chain of per-tuple operators, and a sink. Compiled into one worker
/// function `worker(state, begin, end, extra)` over the scan's row range.
struct PipelineSpec {
  std::string name;            ///< e.g. "scan lineitem"
  int source_table = 0;        ///< QueryProgram table id
  std::vector<int> scan_columns;  ///< column indices in the source table
  std::vector<PipelineOp> ops;
  PipelineSink sink;
};

/// Slot types after the scan and each op (needed by codegen and baselines).
/// `column_types` are the storage types of the scanned columns.
std::vector<ExprType> ComputeSlotTypes(const PipelineSpec& spec,
                                       const std::vector<DataType>& column_types);

/// Deep copy of a pipeline spec (expression trees cloned). Used by the plan
/// fingerprint's sentinel translation (src/cache/).
PipelineSpec ClonePipelineSpec(const PipelineSpec& spec);

}  // namespace aqe

#endif  // AQE_PLAN_PIPELINE_H_
