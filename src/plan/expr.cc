#include "plan/expr.h"

#include <cstring>

#include "common/status.h"
#include "strings/string_predicate.h"

namespace aqe {

namespace {
ExprPtr MakeBinary(ExprKind kind, ExprType type, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->type = type;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}
}  // namespace

ExprPtr Slot(int slot, ExprType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kSlot;
  e->type = type;
  e->slot = slot;
  return e;
}

ExprPtr I64(int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConstI64;
  e->type = ExprType::kI64;
  e->i64_value = value;
  return e;
}

ExprPtr F64(double value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConstF64;
  e->type = ExprType::kF64;
  e->f64_value = value;
  return e;
}

ExprPtr Binary(ExprKind kind, ExprPtr lhs, ExprPtr rhs) {
  ExprType type;
  switch (kind) {
    case ExprKind::kEq: case ExprKind::kNe: case ExprKind::kLt:
    case ExprKind::kLe: case ExprKind::kGt: case ExprKind::kGe:
    case ExprKind::kAnd: case ExprKind::kOr:
      type = ExprType::kBool;
      break;
    case ExprKind::kFAdd: case ExprKind::kFSub: case ExprKind::kFMul:
    case ExprKind::kFDiv:
      type = ExprType::kF64;
      break;
    default:
      type = ExprType::kI64;
      break;
  }
  return MakeBinary(kind, type, std::move(lhs), std::move(rhs));
}

ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kAdd, std::move(l), std::move(r)); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kSub, std::move(l), std::move(r)); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kMul, std::move(l), std::move(r)); }
ExprPtr CheckedAdd(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kCheckedAdd, std::move(l), std::move(r)); }
ExprPtr CheckedSub(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kCheckedSub, std::move(l), std::move(r)); }
ExprPtr CheckedMul(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kCheckedMul, std::move(l), std::move(r)); }
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kEq, std::move(l), std::move(r)); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kNe, std::move(l), std::move(r)); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kLt, std::move(l), std::move(r)); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kLe, std::move(l), std::move(r)); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kGt, std::move(l), std::move(r)); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kGe, std::move(l), std::move(r)); }
ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kAnd, std::move(l), std::move(r)); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(ExprKind::kOr, std::move(l), std::move(r)); }

ExprPtr Not(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->type = ExprType::kBool;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr BitmapTest(const uint8_t* bitmap, ExprPtr code) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBitmapTest;
  e->type = ExprType::kBool;
  e->bitmap = bitmap;
  e->children.push_back(std::move(code));
  return e;
}

ExprPtr LikeMatch(const LikePredicate* pred, ExprPtr code) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLike;
  e->type = ExprType::kBool;
  e->like_pred = pred;
  e->children.push_back(std::move(code));
  return e;
}

ExprPtr CastF64(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCastF64;
  e->type = ExprType::kF64;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr BoolToI64(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBoolToI64;
  e->type = ExprType::kI64;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr CloneExpr(const Expr& expr) {
  auto e = std::make_unique<Expr>();
  e->kind = expr.kind;
  e->type = expr.type;
  e->slot = expr.slot;
  e->i64_value = expr.i64_value;
  e->f64_value = expr.f64_value;
  e->bitmap = expr.bitmap;
  e->like_pred = expr.like_pred;
  for (const auto& child : expr.children) {
    e->children.push_back(CloneExpr(*child));
  }
  return e;
}

namespace {
double AsF64(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}
int64_t FromF64(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}
}  // namespace

int64_t EvalExpr(const Expr& expr, const int64_t* slots) {
  auto child = [&](size_t i) { return EvalExpr(*expr.children[i], slots); };
  switch (expr.kind) {
    case ExprKind::kSlot: return slots[expr.slot];
    case ExprKind::kConstI64: return expr.i64_value;
    case ExprKind::kConstF64: return FromF64(expr.f64_value);
    case ExprKind::kAdd: return child(0) + child(1);
    case ExprKind::kSub: return child(0) - child(1);
    case ExprKind::kMul: return child(0) * child(1);
    case ExprKind::kDiv: return child(0) / child(1);
    case ExprKind::kCheckedAdd: {
      int64_t r;
      AQE_CHECK_MSG(!__builtin_add_overflow(child(0), child(1), &r),
                    "overflow in EvalExpr");
      return r;
    }
    case ExprKind::kCheckedSub: {
      int64_t r;
      AQE_CHECK_MSG(!__builtin_sub_overflow(child(0), child(1), &r),
                    "overflow in EvalExpr");
      return r;
    }
    case ExprKind::kCheckedMul: {
      int64_t r;
      AQE_CHECK_MSG(!__builtin_mul_overflow(child(0), child(1), &r),
                    "overflow in EvalExpr");
      return r;
    }
    case ExprKind::kFAdd: return FromF64(AsF64(child(0)) + AsF64(child(1)));
    case ExprKind::kFSub: return FromF64(AsF64(child(0)) - AsF64(child(1)));
    case ExprKind::kFMul: return FromF64(AsF64(child(0)) * AsF64(child(1)));
    case ExprKind::kFDiv: return FromF64(AsF64(child(0)) / AsF64(child(1)));
    case ExprKind::kEq: return child(0) == child(1);
    case ExprKind::kNe: return child(0) != child(1);
    case ExprKind::kLt: return child(0) < child(1);
    case ExprKind::kLe: return child(0) <= child(1);
    case ExprKind::kGt: return child(0) > child(1);
    case ExprKind::kGe: return child(0) >= child(1);
    case ExprKind::kAnd: return (child(0) != 0) & (child(1) != 0);
    case ExprKind::kOr: return (child(0) != 0) | (child(1) != 0);
    case ExprKind::kNot: return child(0) == 0;
    case ExprKind::kBitmapTest:
      return expr.bitmap[static_cast<uint64_t>(child(0))] != 0;
    case ExprKind::kLike:
      return expr.like_pred->Matches(child(0));
    case ExprKind::kCastF64:
      return FromF64(static_cast<double>(child(0)));
    case ExprKind::kBoolToI64:
      return child(0) != 0;
  }
  AQE_UNREACHABLE("bad ExprKind");
}

int ExprSize(const Expr& expr) {
  int n = 1;
  for (const auto& child : expr.children) n += ExprSize(*child);
  return n;
}

}  // namespace aqe
