#include "plan/plan.h"

#include "common/status.h"
#include "obs/memory_tracker.h"
#include "simd/simd.h"

namespace aqe {

void QueryContext::AttachMemoryTracker(
    std::shared_ptr<QueryMemoryTracker> tracker) {
  memory = std::move(tracker);
  for (auto& set : agg_sets) set->set_memory_tracker(memory.get());
  for (auto& out : outputs) out->set_memory_tracker(memory.get());
}

int QueryProgram::DeclareJoinTable(uint32_t payload_slots) {
  join_payload_slots_.push_back(payload_slots);
  return static_cast<int>(join_payload_slots_.size() - 1);
}

int QueryProgram::DeclareAggSet(uint32_t payload_slots,
                                std::vector<int64_t> init) {
  AQE_CHECK(init.size() == payload_slots);
  agg_decls_.push_back({payload_slots, std::move(init)});
  return static_cast<int>(agg_decls_.size() - 1);
}

int QueryProgram::DeclareOutput(uint32_t row_slots) {
  output_slots_.push_back(row_slots);
  return static_cast<int>(output_slots_.size() - 1);
}

int QueryProgram::DeclareBaseTable(const std::string& name) {
  tables_.push_back({name, -1});
  return static_cast<int>(tables_.size() - 1);
}

int QueryProgram::DeclareTempTable() {
  tables_.push_back({"", num_temps_++});
  return static_cast<int>(tables_.size() - 1);
}

const uint8_t* QueryProgram::AddBitmap(std::vector<uint8_t> bitmap) {
  // The SIMD probe kernels gather 4 bytes at bitmap + code, so keep
  // kSimdBitmapPadding readable zero bytes past the last code (simd/simd.h).
  bitmap.resize(bitmap.size() + kSimdBitmapPadding, 0);
  bitmaps_.push_back(
      std::make_unique<std::vector<uint8_t>>(std::move(bitmap)));
  return bitmaps_.back()->data();
}

const LikePredicate* QueryProgram::AddLikePredicate(LikePredicate pred) {
  like_predicates_.push_back(
      std::make_unique<LikePredicate>(std::move(pred)));
  return like_predicates_.back().get();
}

int QueryProgram::AddPipeline(PipelineSpec spec) {
  pipelines_.push_back(std::move(spec));
  Stage stage;
  stage.pipeline = static_cast<int>(pipelines_.size() - 1);
  stages_.push_back(std::move(stage));
  return stage.pipeline;
}

void QueryProgram::AddStep(EngineStep step) {
  Stage stage;
  stage.step = std::move(step);
  stages_.push_back(std::move(stage));
}

std::unique_ptr<QueryContext> QueryProgram::MakeContext(
    const Catalog* catalog) const {
  auto ctx = std::make_unique<QueryContext>();
  ctx->catalog = catalog;
  ctx->join_tables.resize(join_payload_slots_.size());
  for (const AggDecl& decl : agg_decls_) {
    ctx->agg_sets.push_back(
        std::make_unique<AggHashTableSet>(decl.payload_slots, decl.init));
  }
  for (uint32_t slots : output_slots_) {
    ctx->outputs.push_back(std::make_unique<OutputBuffer>(slots));
  }
  ctx->temp_tables.resize(static_cast<size_t>(num_temps_));
  return ctx;
}

const Table* QueryProgram::ResolveTable(int table_id,
                                        const QueryContext& ctx) const {
  const TableDecl& decl = tables_[static_cast<size_t>(table_id)];
  if (decl.temp_index >= 0) {
    const Table* table =
        ctx.temp_tables[static_cast<size_t>(decl.temp_index)].get();
    AQE_CHECK_MSG(table != nullptr, "temp table not materialized yet");
    return table;
  }
  return ctx.catalog->GetTable(decl.base_name);
}

}  // namespace aqe
