#ifndef AQE_PLAN_PLAN_H_
#define AQE_PLAN_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/pipeline.h"
#include "runtime/agg_hash_table.h"
#include "runtime/join_hash_table.h"
#include "runtime/output_buffer.h"
#include "runtime/sorter.h"
#include "storage/table.h"
#include "strings/string_predicate.h"

namespace aqe {

class QueryMemoryTracker;

/// Runtime state of one query execution: the hash tables, aggregation
/// tables, output buffers and temporary tables declared by its
/// QueryProgram, plus the final result rows. Created fresh per run.
struct QueryContext {
  /// Per-query memory accounting (null when the run is untracked, e.g.
  /// standalone runner/test pipelines). Engine steps that create runtime
  /// structures pass memory.get() so their allocations are charged.
  /// Declared first: destroyed last, after every charged structure below
  /// has run its destructor (which calls tracker->Release()).
  std::shared_ptr<QueryMemoryTracker> memory;
  const Catalog* catalog = nullptr;
  std::vector<std::unique_ptr<JoinHashTable>> join_tables;
  std::vector<std::unique_ptr<AggHashTableSet>> agg_sets;
  std::vector<std::unique_ptr<OutputBuffer>> outputs;
  std::vector<std::unique_ptr<Table>> temp_tables;
  /// The query result (after the final engine step).
  std::vector<std::vector<int64_t>> result;

  /// Attaches the tracker and forwards it to the already-created agg sets
  /// and output buffers (join tables are created later by engine steps,
  /// which read `memory` themselves).
  void AttachMemoryTracker(std::shared_ptr<QueryMemoryTracker> tracker);
};

/// A complete executable query: declarations of runtime objects, the
/// compiled pipelines, and the interleaved engine steps (the C++ part the
/// paper assigns to queryStart: creating hash tables, merging aggregation
/// results, sorting, …). Built once by a query builder; executable many
/// times under any engine/mode.
class QueryProgram {
 public:
  explicit QueryProgram(std::string name) : name_(std::move(name)) {}

  QueryProgram(const QueryProgram&) = delete;
  QueryProgram& operator=(const QueryProgram&) = delete;
  QueryProgram(QueryProgram&&) = default;

  const std::string& name() const { return name_; }

  // --- declarations ---------------------------------------------------------
  /// Declares a join hash table with `payload_slots` 8-byte payload values.
  /// The table itself is created by an engine step (it needs a runtime
  /// cardinality estimate), conventionally via MakeJoinTable below.
  int DeclareJoinTable(uint32_t payload_slots);
  /// Declares a per-thread aggregation table set.
  int DeclareAggSet(uint32_t payload_slots, std::vector<int64_t> init);
  /// Declares an output buffer of `row_slots` 8-byte values per row.
  int DeclareOutput(uint32_t row_slots);
  /// Declares a base table by name; returns a table id for pipelines.
  int DeclareBaseTable(const std::string& name);
  /// Declares a temporary table (filled by an engine step); the temp index
  /// equals the id order of declaration among temps.
  int DeclareTempTable();
  /// Stores a dictionary-predicate bitmap; the pointer stays valid for the
  /// program's lifetime (Expr::bitmap references it).
  const uint8_t* AddBitmap(std::vector<uint8_t> bitmap);
  /// Stores a compiled LIKE predicate (the runtime-call path's matcher
  /// object); the pointer stays valid for the program's lifetime
  /// (Expr::like_pred references it).
  const LikePredicate* AddLikePredicate(LikePredicate pred);

  // --- stages -----------------------------------------------------------------
  using EngineStep = std::function<void(QueryContext*)>;
  /// Appends a generated pipeline stage; returns the pipeline id.
  int AddPipeline(PipelineSpec spec);
  /// Appends a C++ engine step.
  void AddStep(EngineStep step);

  /// Creates the QueryContext (allocating agg sets / outputs from their
  /// declarations; join tables stay null until an engine step creates them).
  std::unique_ptr<QueryContext> MakeContext(const Catalog* catalog) const;

  /// Resolves a pipeline's source table in a context.
  const Table* ResolveTable(int table_id, const QueryContext& ctx) const;

  // --- introspection ----------------------------------------------------------
  struct Stage {
    int pipeline = -1;   ///< >= 0 for pipeline stages
    EngineStep step;     ///< set for engine steps
  };
  const std::vector<Stage>& stages() const { return stages_; }
  const std::vector<PipelineSpec>& pipelines() const { return pipelines_; }
  int num_join_tables() const { return static_cast<int>(join_payload_slots_.size()); }
  uint32_t join_payload_slots(int id) const {
    return join_payload_slots_[static_cast<size_t>(id)];
  }
  int num_agg_sets() const { return static_cast<int>(agg_decls_.size()); }
  int num_outputs() const { return static_cast<int>(output_slots_.size()); }
  /// Predicate bitmaps in AddBitmap order (their index is the bitmap's slot
  /// in the worker binding array; plan fingerprinting hashes the index, not
  /// the address).
  const std::vector<std::unique_ptr<std::vector<uint8_t>>>& bitmaps() const {
    return bitmaps_;
  }
  /// LIKE predicates in AddLikePredicate order (their index is the
  /// predicate's slot in the worker binding array; fingerprinting hashes
  /// the index and extracts the pattern as a literal).
  const std::vector<std::unique_ptr<LikePredicate>>& like_predicates() const {
    return like_predicates_;
  }
  struct TableDeclView {
    const std::string* base_name;  ///< nullptr for temps
    int temp_index;
  };
  TableDeclView table_decl(int id) const {
    const TableDecl& decl = tables_[static_cast<size_t>(id)];
    return {decl.temp_index >= 0 ? nullptr : &decl.base_name,
            decl.temp_index};
  }

 private:
  std::string name_;
  std::vector<uint32_t> join_payload_slots_;
  struct AggDecl {
    uint32_t payload_slots;
    std::vector<int64_t> init;
  };
  std::vector<AggDecl> agg_decls_;
  std::vector<uint32_t> output_slots_;
  struct TableDecl {
    std::string base_name;  // empty for temps
    int temp_index = -1;
  };
  std::vector<TableDecl> tables_;
  int num_temps_ = 0;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> bitmaps_;
  std::vector<std::unique_ptr<LikePredicate>> like_predicates_;
  std::vector<PipelineSpec> pipelines_;
  std::vector<Stage> stages_;
};

}  // namespace aqe

#endif  // AQE_PLAN_PLAN_H_
