#include "plan/pipeline.h"

#include "common/status.h"

namespace aqe {

std::vector<ExprType> ComputeSlotTypes(
    const PipelineSpec& spec, const std::vector<DataType>& column_types) {
  AQE_CHECK(column_types.size() == spec.scan_columns.size());
  std::vector<ExprType> slots;
  for (DataType type : column_types) {
    slots.push_back(type == DataType::kF64 ? ExprType::kF64 : ExprType::kI64);
  }
  for (const PipelineOp& op : spec.ops) {
    if (const auto* compute = std::get_if<OpCompute>(&op)) {
      slots.push_back(compute->expr->type);
    } else if (const auto* probe = std::get_if<OpProbe>(&op)) {
      if (probe->kind == JoinKind::kInner) {
        for (int i = 0; i < probe->payload_slots; ++i) {
          slots.push_back(ExprType::kI64);  // payloads are raw 8-byte slots
        }
      }
    }
  }
  return slots;
}

}  // namespace aqe
