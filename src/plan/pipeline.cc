#include "plan/pipeline.h"

#include "common/status.h"

namespace aqe {

std::vector<ExprType> ComputeSlotTypes(
    const PipelineSpec& spec, const std::vector<DataType>& column_types) {
  AQE_CHECK(column_types.size() == spec.scan_columns.size());
  std::vector<ExprType> slots;
  for (DataType type : column_types) {
    slots.push_back(type == DataType::kF64 ? ExprType::kF64 : ExprType::kI64);
  }
  for (const PipelineOp& op : spec.ops) {
    if (const auto* compute = std::get_if<OpCompute>(&op)) {
      slots.push_back(compute->expr->type);
    } else if (const auto* probe = std::get_if<OpProbe>(&op)) {
      if (probe->kind == JoinKind::kInner) {
        for (int i = 0; i < probe->payload_slots; ++i) {
          slots.push_back(ExprType::kI64);  // payloads are raw 8-byte slots
        }
      }
    }
  }
  return slots;
}

PipelineSpec ClonePipelineSpec(const PipelineSpec& spec) {
  PipelineSpec copy;
  copy.name = spec.name;
  copy.source_table = spec.source_table;
  copy.scan_columns = spec.scan_columns;
  for (const PipelineOp& op : spec.ops) {
    if (const auto* filter = std::get_if<OpFilter>(&op)) {
      copy.ops.push_back(OpFilter{CloneExpr(*filter->predicate)});
    } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
      copy.ops.push_back(OpCompute{CloneExpr(*compute->expr)});
    } else {
      const auto& probe = std::get<OpProbe>(op);
      OpProbe p;
      p.ht = probe.ht;
      p.key = CloneExpr(*probe.key);
      p.payload_slots = probe.payload_slots;
      p.kind = probe.kind;
      copy.ops.push_back(std::move(p));
    }
  }
  if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
    SinkBuild s;
    s.ht = build->ht;
    s.key = CloneExpr(*build->key);
    for (const auto& p : build->payload) s.payload.push_back(CloneExpr(*p));
    copy.sink = std::move(s);
  } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    SinkAgg s;
    s.agg = agg->agg;
    s.key = CloneExpr(*agg->key);
    for (const AggItem& item : agg->items) {
      s.items.push_back({item.kind,
                         item.value ? CloneExpr(*item.value) : nullptr,
                         item.checked});
    }
    copy.sink = std::move(s);
  } else {
    const auto& out = std::get<SinkOutput>(spec.sink);
    SinkOutput s;
    s.output = out.output;
    for (const auto& v : out.values) s.values.push_back(CloneExpr(*v));
    copy.sink = std::move(s);
  }
  return copy;
}

}  // namespace aqe
