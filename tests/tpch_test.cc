#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "storage/table.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_schema.h"

namespace aqe {
namespace {

using tpch::DateToDays;
using tpch::DaysToDate;

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateToDays(1970, 1, 1), 0);
  EXPECT_EQ(DateToDays(1970, 1, 2), 1);
  EXPECT_EQ(DateToDays(1969, 12, 31), -1);
  // 1992-01-01 is 8035 days after epoch.
  EXPECT_EQ(DateToDays(1992, 1, 1), 8035);
}

TEST(DateTest, RoundTripAcrossYears) {
  for (int32_t d = DateToDays(1992, 1, 1); d <= DateToDays(1998, 12, 31);
       d += 13) {
    int y, m, day;
    DaysToDate(d, &y, &m, &day);
    EXPECT_EQ(DateToDays(y, m, day), d);
  }
}

TEST(DateTest, Ordering) {
  EXPECT_LT(DateToDays(1994, 1, 1), DateToDays(1995, 1, 1));
  EXPECT_LT(DateToDays(1995, 3, 14), DateToDays(1995, 3, 15));
}

class TpchTinyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::BuildTpchDatabase(catalog_, /*sf=*/0.001);
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* TpchTinyTest::catalog_ = nullptr;

TEST_F(TpchTinyTest, Cardinalities) {
  EXPECT_EQ(catalog_->GetTable("region")->num_rows(), 5u);
  EXPECT_EQ(catalog_->GetTable("nation")->num_rows(), 25u);
  EXPECT_EQ(catalog_->GetTable("supplier")->num_rows(), 10u);
  EXPECT_EQ(catalog_->GetTable("customer")->num_rows(), 150u);
  EXPECT_EQ(catalog_->GetTable("part")->num_rows(), 200u);
  EXPECT_EQ(catalog_->GetTable("partsupp")->num_rows(), 800u);
  EXPECT_EQ(catalog_->GetTable("orders")->num_rows(), 1500u);
  // lineitem has 1..7 lines per order
  uint64_t li = catalog_->GetTable("lineitem")->num_rows();
  EXPECT_GE(li, 1500u);
  EXPECT_LE(li, 1500u * 7);
}

TEST_F(TpchTinyTest, Deterministic) {
  Catalog other;
  tpch::BuildTpchDatabase(&other, 0.001);
  const Table* a = catalog_->GetTable("lineitem");
  const Table* b = other.GetTable("lineitem");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (uint64_t r = 0; r < a->num_rows(); r += 97) {
    EXPECT_EQ(a->column("l_extendedprice").GetI64(r),
              b->column("l_extendedprice").GetI64(r));
    EXPECT_EQ(a->column("l_shipdate").GetI32(r),
              b->column("l_shipdate").GetI32(r));
  }
}

TEST_F(TpchTinyTest, ForeignKeysInRange) {
  const Table* li = catalog_->GetTable("lineitem");
  uint64_t parts = catalog_->GetTable("part")->num_rows();
  uint64_t supps = catalog_->GetTable("supplier")->num_rows();
  for (uint64_t r = 0; r < li->num_rows(); ++r) {
    int64_t pk = li->column("l_partkey").GetI64(r);
    int64_t sk = li->column("l_suppkey").GetI64(r);
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, static_cast<int64_t>(parts));
    ASSERT_GE(sk, 1);
    ASSERT_LE(sk, static_cast<int64_t>(supps));
  }
  const Table* ord = catalog_->GetTable("orders");
  uint64_t custs = catalog_->GetTable("customer")->num_rows();
  for (uint64_t r = 0; r < ord->num_rows(); ++r) {
    int64_t ck = ord->column("o_custkey").GetI64(r);
    ASSERT_GE(ck, 1);
    ASSERT_LE(ck, static_cast<int64_t>(custs));
  }
}

TEST_F(TpchTinyTest, DateRelationsHold) {
  const Table* li = catalog_->GetTable("lineitem");
  const Table* ord = catalog_->GetTable("orders");
  // Build orderkey -> orderdate.
  std::unordered_map<int64_t, int32_t> odate;
  for (uint64_t r = 0; r < ord->num_rows(); ++r) {
    odate[ord->column("o_orderkey").GetI64(r)] =
        ord->column("o_orderdate").GetI32(r);
  }
  for (uint64_t r = 0; r < li->num_rows(); ++r) {
    int64_t ok = li->column("l_orderkey").GetI64(r);
    ASSERT_TRUE(odate.count(ok));
    int32_t sd = li->column("l_shipdate").GetI32(r);
    int32_t rd = li->column("l_receiptdate").GetI32(r);
    EXPECT_GT(sd, odate[ok]);
    EXPECT_GT(rd, sd);
  }
}

TEST_F(TpchTinyTest, DecimalRangesSane) {
  const Table* li = catalog_->GetTable("lineitem");
  for (uint64_t r = 0; r < li->num_rows(); ++r) {
    int64_t qty = li->column("l_quantity").GetI64(r);
    int64_t disc = li->column("l_discount").GetI64(r);
    int64_t tax = li->column("l_tax").GetI64(r);
    EXPECT_GE(qty, 100);       // >= 1.00
    EXPECT_LE(qty, 5000);      // <= 50.00
    EXPECT_GE(disc, 0);
    EXPECT_LE(disc, 10);       // <= 0.10
    EXPECT_GE(tax, 0);
    EXPECT_LE(tax, 8);         // <= 0.08
  }
}

TEST_F(TpchTinyTest, DictionariesPopulated) {
  const Table* li = catalog_->GetTable("lineitem");
  const Dictionary& sm = li->dictionary(li->ColumnIndex("l_shipmode"));
  EXPECT_EQ(sm.size(), 7);
  EXPECT_GE(sm.Find("MAIL"), 0);
  EXPECT_GE(sm.Find("SHIP"), 0);
  const Dictionary& rf = li->dictionary(li->ColumnIndex("l_returnflag"));
  EXPECT_EQ(rf.size(), 3);

  const Table* part = catalog_->GetTable("part");
  const Dictionary& type = part->dictionary(part->ColumnIndex("p_type"));
  // 6 x 5 x 5 possible types; a tiny SF sees many of them.
  EXPECT_GT(type.size(), 20);
  auto promo = type.MatchPrefix("PROMO");
  int promo_count = 0;
  for (uint8_t b : promo) promo_count += b;
  EXPECT_GT(promo_count, 0);
}

TEST_F(TpchTinyTest, Q14StyleSelectivity) {
  // ~1/6 of parts should have a PROMO type.
  const Table* part = catalog_->GetTable("part");
  const Dictionary& type = part->dictionary(part->ColumnIndex("p_type"));
  auto promo = type.MatchPrefix("PROMO");
  const Column& tc = part->column("p_type");
  uint64_t hits = 0;
  for (uint64_t r = 0; r < part->num_rows(); ++r) {
    hits += promo[static_cast<size_t>(tc.GetI32(r))];
  }
  double sel = static_cast<double>(hits) / part->num_rows();
  EXPECT_NEAR(sel, 1.0 / 6.0, 0.08);
}

TEST(TpchScaleTest, CardinalitiesScaleLinearly) {
  auto c1 = tpch::CardinalitiesForScale(0.01);
  auto c2 = tpch::CardinalitiesForScale(0.02);
  EXPECT_EQ(c2.orders, 2 * c1.orders);
  EXPECT_EQ(c2.customer, 2 * c1.customer);
}

}  // namespace
}  // namespace aqe
