#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>

#include "common/random.h"
#include "ir/ir_module.h"
#include "jit/jit_compiler.h"
#include "jit/naive_interpreter.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

// Test runtime helpers callable from generated code.
uint64_t test_mix2(uint64_t a, uint64_t b) { return a * 31 + b; }
uint64_t test_mix3(uint64_t a, uint64_t b, uint64_t c) {
  return (a ^ (b << 1)) + c * 7;
}

RuntimeRegistry& TestRegistry() {
  static RuntimeRegistry* registry = [] {
    auto* r = new RuntimeRegistry();
    RegisterBuiltinRuntime(r);
    r->Register("test_mix2", reinterpret_cast<void*>(&test_mix2), 2, true);
    r->Register("test_mix3", reinterpret_cast<void*>(&test_mix3), 3, true);
    return r;
  }();
  return *registry;
}

/// A generator builds the function "f" into a fresh module (so each engine
/// gets its own copy — JIT compilation consumes the module).
using IrGenerator = std::function<void(IrModule*)>;

/// Executes `gen`'s function under every engine and checks they all agree.
/// Buffers: each engine gets its own copy of `buf_init` (64 i64 slots); the
/// final buffer contents must also agree.
struct DifferentialResult {
  uint64_t value;
  std::vector<int64_t> buffer;
};

DifferentialResult RunVm(const IrGenerator& gen, uint64_t a, uint64_t b,
                         const std::vector<int64_t>& buf_init,
                         const TranslatorOptions& options) {
  IrModule mod("vm");
  gen(&mod);
  EXPECT_EQ(mod.Verify(), "");
  BcProgram program = TranslateToBytecode(
      *mod.module().getFunction("f"), TestRegistry(), options);
  std::vector<int64_t> buf = buf_init;
  uint64_t args[3] = {a, b, reinterpret_cast<uint64_t>(buf.data())};
  uint64_t result = VmExecute(program, args, 3);
  return {result, std::move(buf)};
}

DifferentialResult RunNaive(const IrGenerator& gen, uint64_t a, uint64_t b,
                            const std::vector<int64_t>& buf_init) {
  IrModule mod("naive");
  gen(&mod);
  std::vector<int64_t> buf = buf_init;
  uint64_t args[3] = {a, b, reinterpret_cast<uint64_t>(buf.data())};
  uint64_t result = NaiveIrInterpret(*mod.module().getFunction("f"), args, 3,
                                     TestRegistry());
  return {result, std::move(buf)};
}

DifferentialResult RunJit(const IrGenerator& gen, uint64_t a, uint64_t b,
                          const std::vector<int64_t>& buf_init,
                          JitMode mode) {
  IrModule mod("jit");
  gen(&mod);
  auto compiled = JitCompile(std::move(mod), mode, TestRegistry());
  auto* fn = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, int64_t*)>(
      compiled->Lookup("f"));
  EXPECT_NE(fn, nullptr);
  std::vector<int64_t> buf = buf_init;
  uint64_t result = fn(a, b, buf.data());
  return {result, std::move(buf)};
}

void ExpectAllEnginesAgree(const IrGenerator& gen, uint64_t a, uint64_t b,
                           bool include_jit = true) {
  std::vector<int64_t> buf_init(64);
  for (int i = 0; i < 64; ++i) buf_init[static_cast<size_t>(i)] = i * 11 - 300;

  DifferentialResult reference = RunNaive(gen, a, b, buf_init);

  TranslatorOptions fused;
  DifferentialResult vm_fused = RunVm(gen, a, b, buf_init, fused);
  EXPECT_EQ(vm_fused.value, reference.value) << "vm fused vs naive";
  EXPECT_EQ(vm_fused.buffer, reference.buffer) << "vm fused buffer";

  TranslatorOptions unfused;
  unfused.fuse_macro_ops = false;
  DifferentialResult vm_unfused = RunVm(gen, a, b, buf_init, unfused);
  EXPECT_EQ(vm_unfused.value, reference.value) << "vm unfused vs naive";
  EXPECT_EQ(vm_unfused.buffer, reference.buffer) << "vm unfused buffer";

  TranslatorOptions window;
  window.strategy = RegAllocStrategy::kWindow;
  DifferentialResult vm_window = RunVm(gen, a, b, buf_init, window);
  EXPECT_EQ(vm_window.value, reference.value) << "vm window vs naive";

  TranslatorOptions noreuse;
  noreuse.strategy = RegAllocStrategy::kNoReuse;
  DifferentialResult vm_noreuse = RunVm(gen, a, b, buf_init, noreuse);
  EXPECT_EQ(vm_noreuse.value, reference.value) << "vm no-reuse vs naive";

  if (include_jit) {
    DifferentialResult jit_unopt =
        RunJit(gen, a, b, buf_init, JitMode::kUnoptimized);
    EXPECT_EQ(jit_unopt.value, reference.value) << "jit unopt vs naive";
    EXPECT_EQ(jit_unopt.buffer, reference.buffer) << "jit unopt buffer";

    DifferentialResult jit_opt =
        RunJit(gen, a, b, buf_init, JitMode::kOptimized);
    EXPECT_EQ(jit_opt.value, reference.value) << "jit opt vs naive";
    EXPECT_EQ(jit_opt.buffer, reference.buffer) << "jit opt buffer";
  }
}

/// Declares `i64 f(i64, i64, ptr)` and positions the builder in its entry.
llvm::Function* MakeF(IrModule* mod, llvm::IRBuilder<>* b) {
  auto& ctx = mod->context();
  auto* fty = llvm::FunctionType::get(
      llvm::Type::getInt64Ty(ctx),
      {llvm::Type::getInt64Ty(ctx), llvm::Type::getInt64Ty(ctx),
       llvm::Type::getInt64PtrTy(ctx)},
      false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, "f",
                                    &mod->module());
  b->SetInsertPoint(llvm::BasicBlock::Create(ctx, "entry", fn));
  return fn;
}

// --- directed differential tests ---------------------------------------------

TEST(VmJitTest, SimpleAdd) {
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    b.CreateRet(b.CreateAdd(fn->getArg(0), fn->getArg(1)));
  };
  ExpectAllEnginesAgree(gen, 41, 1);
  ExpectAllEnginesAgree(gen, static_cast<uint64_t>(-5), 3);
}

TEST(VmJitTest, LoopWithPhis) {
  // sum of i*a for i in [0, b)
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
    auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
    auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
    auto* entry = &fn->getEntryBlock();
    b.CreateBr(head);
    b.SetInsertPoint(head);
    auto* i = b.CreatePHI(b.getInt64Ty(), 2, "i");
    auto* sum = b.CreatePHI(b.getInt64Ty(), 2, "sum");
    auto* cond = b.CreateICmpSLT(i, fn->getArg(1));
    b.CreateCondBr(cond, body, exit);
    b.SetInsertPoint(body);
    auto* term = b.CreateMul(i, fn->getArg(0));
    auto* sum2 = b.CreateAdd(sum, term);
    auto* i2 = b.CreateAdd(i, b.getInt64(1));
    b.CreateBr(head);
    b.SetInsertPoint(exit);
    b.CreateRet(sum);
    i->addIncoming(b.getInt64(0), entry);
    i->addIncoming(i2, body);
    sum->addIncoming(b.getInt64(0), entry);
    sum->addIncoming(sum2, body);
  };
  ExpectAllEnginesAgree(gen, 3, 10);
  ExpectAllEnginesAgree(gen, 7, 0);  // zero-trip loop
}

TEST(VmJitTest, PhiSwapCycle) {
  // (x, y) = (y, x) each iteration — forces a parallel-copy cycle.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
    auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
    auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
    auto* entry = &fn->getEntryBlock();
    b.CreateBr(head);
    b.SetInsertPoint(head);
    auto* i = b.CreatePHI(b.getInt64Ty(), 2);
    auto* x = b.CreatePHI(b.getInt64Ty(), 2);
    auto* y = b.CreatePHI(b.getInt64Ty(), 2);
    auto* cond = b.CreateICmpSLT(i, b.getInt64(5));
    b.CreateCondBr(cond, body, exit);
    b.SetInsertPoint(body);
    auto* i2 = b.CreateAdd(i, b.getInt64(1));
    b.CreateBr(head);
    b.SetInsertPoint(exit);
    auto* r = b.CreateSub(b.CreateMul(x, b.getInt64(1000)), y);
    b.CreateRet(r);
    i->addIncoming(b.getInt64(0), entry);
    i->addIncoming(i2, body);
    x->addIncoming(fn->getArg(0), entry);
    x->addIncoming(y, body);  // swap
    y->addIncoming(fn->getArg(1), entry);
    y->addIncoming(x, body);  // swap
  };
  ExpectAllEnginesAgree(gen, 17, 99);
}

TEST(VmJitTest, OverflowCheckedAdd) {
  // Returns a+b, or -1 if it overflows (mirrors codegen's overflow blocks,
  // minus the noreturn call so all engines can observe both paths).
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* ovf = llvm::BasicBlock::Create(ctx, "ovf", fn);
    auto* cont = llvm::BasicBlock::Create(ctx, "cont", fn);
    auto* pair = b.CreateBinaryIntrinsic(llvm::Intrinsic::sadd_with_overflow,
                                         fn->getArg(0), fn->getArg(1));
    auto* val = b.CreateExtractValue(pair, 0);
    auto* flag = b.CreateExtractValue(pair, 1);
    b.CreateCondBr(flag, ovf, cont);
    b.SetInsertPoint(ovf);
    b.CreateRet(b.getInt64(static_cast<uint64_t>(-1)));
    b.SetInsertPoint(cont);
    b.CreateRet(val);
  };
  ExpectAllEnginesAgree(gen, 40, 2);
  ExpectAllEnginesAgree(gen, static_cast<uint64_t>(INT64_MAX), 1);
  ExpectAllEnginesAgree(gen, static_cast<uint64_t>(INT64_MIN),
                        static_cast<uint64_t>(-1));
}

TEST(VmJitTest, OverflowFusionProducesMacroOp) {
  IrModule mod("m");
  llvm::IRBuilder<> b(mod.context());
  llvm::Function* fn = MakeF(&mod, &b);
  auto& ctx = mod.context();
  auto* ovf = llvm::BasicBlock::Create(ctx, "ovf", fn);
  auto* cont = llvm::BasicBlock::Create(ctx, "cont", fn);
  auto* pair = b.CreateBinaryIntrinsic(llvm::Intrinsic::smul_with_overflow,
                                       fn->getArg(0), fn->getArg(1));
  auto* val = b.CreateExtractValue(pair, 0);
  auto* flag = b.CreateExtractValue(pair, 1);
  b.CreateCondBr(flag, ovf, cont);
  b.SetInsertPoint(ovf);
  b.CreateRet(b.getInt64(static_cast<uint64_t>(-1)));
  b.SetInsertPoint(cont);
  b.CreateRet(val);

  BcProgram fused = TranslateToBytecode(*fn, TestRegistry(), {});
  EXPECT_NE(fused.Disassemble().find("smul_ovf_br_i64"), std::string::npos);
  EXPECT_GT(fused.fused_instructions, 0u);

  TranslatorOptions no_fuse;
  no_fuse.fuse_macro_ops = false;
  BcProgram unfused = TranslateToBytecode(*fn, TestRegistry(), no_fuse);
  EXPECT_EQ(unfused.Disassemble().find("smul_ovf_br_i64"), std::string::npos);
  EXPECT_NE(unfused.Disassemble().find("smul_ovf_i64"), std::string::npos);
  // Fusion shrinks the program (4 LLVM instructions -> 1 VM instruction).
  EXPECT_LT(fused.code.size(), unfused.code.size());
}

TEST(VmJitTest, GepLoadStoreFusion) {
  // buf[(a & 63)] = buf[(b & 63)] * 3; returns buf[a & 63].
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto* ia = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* ib = b.CreateAnd(fn->getArg(1), b.getInt64(63));
    auto* src = b.CreateGEP(b.getInt64Ty(), fn->getArg(2), ib);
    auto* v = b.CreateLoad(b.getInt64Ty(), src);
    auto* v3 = b.CreateMul(v, b.getInt64(3));
    auto* dst = b.CreateGEP(b.getInt64Ty(), fn->getArg(2), ia);
    b.CreateStore(v3, dst);
    auto* back = b.CreateGEP(b.getInt64Ty(), fn->getArg(2), ia);
    b.CreateRet(b.CreateLoad(b.getInt64Ty(), back));
  };
  ExpectAllEnginesAgree(gen, 5, 9);
  ExpectAllEnginesAgree(gen, 63, 63);

  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  std::string disasm = program.Disassemble();
  EXPECT_NE(disasm.find("load_idx_i64"), std::string::npos);
  EXPECT_NE(disasm.find("store_idx_i64"), std::string::npos);
}

TEST(VmJitTest, RuntimeCalls) {
  IrGenerator gen = [](IrModule* mod) {
    auto& ctx = mod->context();
    llvm::IRBuilder<> b(ctx);
    llvm::Function* fn = MakeF(mod, &b);
    auto* i64 = llvm::Type::getInt64Ty(ctx);
    auto* mix2 = llvm::Function::Create(
        llvm::FunctionType::get(i64, {i64, i64}, false),
        llvm::Function::ExternalLinkage, "test_mix2", &mod->module());
    auto* mix3 = llvm::Function::Create(
        llvm::FunctionType::get(i64, {i64, i64, i64}, false),
        llvm::Function::ExternalLinkage, "test_mix3", &mod->module());
    auto* r1 = b.CreateCall(mix2, {fn->getArg(0), fn->getArg(1)});
    auto* r2 = b.CreateCall(mix3, {r1, fn->getArg(0), b.getInt64(5)});
    b.CreateRet(b.CreateXor(r1, r2));
  };
  ExpectAllEnginesAgree(gen, 12, 34);
}

TEST(VmJitTest, I32ArithmeticWraps) {
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto* a32 = b.CreateTrunc(fn->getArg(0), b.getInt32Ty());
    auto* b32 = b.CreateTrunc(fn->getArg(1), b.getInt32Ty());
    auto* m = b.CreateMul(a32, b32);
    auto* s = b.CreateAdd(m, b.getInt32(100));
    auto* d = b.CreateSDiv(s, b.getInt32(7));
    b.CreateRet(b.CreateSExt(d, b.getInt64Ty()));
  };
  ExpectAllEnginesAgree(gen, 0x7FFFFFFF, 3);  // i32 overflow wraps
  ExpectAllEnginesAgree(gen, 1000, 999);
}

TEST(VmJitTest, DoubleArithmetic) {
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto* x = b.CreateSIToFP(fn->getArg(0), b.getDoubleTy());
    auto* y = b.CreateSIToFP(fn->getArg(1), b.getDoubleTy());
    auto* q = b.CreateFDiv(x, b.CreateFAdd(y, llvm::ConstantFP::get(
                                                   b.getDoubleTy(), 1.0)));
    auto* s = b.CreateFMul(q, llvm::ConstantFP::get(b.getDoubleTy(), 4.0));
    b.CreateRet(b.CreateBitCast(s, b.getInt64Ty()));
  };
  ExpectAllEnginesAgree(gen, 10, 3);
  ExpectAllEnginesAgree(gen, static_cast<uint64_t>(-7), 2);
}

TEST(VmJitTest, SelectAndComparisons) {
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto* lt = b.CreateICmpSLT(fn->getArg(0), fn->getArg(1));
    auto* max = b.CreateSelect(lt, fn->getArg(1), fn->getArg(0));
    auto* ult = b.CreateICmpULT(fn->getArg(0), fn->getArg(1));
    auto* bit = b.CreateZExt(ult, b.getInt64Ty());
    b.CreateRet(b.CreateAdd(max, bit));
  };
  ExpectAllEnginesAgree(gen, 5, 9);
  ExpectAllEnginesAgree(gen, static_cast<uint64_t>(-5), 9);
}

// --- register allocation strategies -------------------------------------------

TEST(RegAllocTest, StrategiesOrderedBySize) {
  // A function with several loops and many values: loop-aware must beat
  // window must beat no-reuse (§IV-C: 6 KB vs 21 KB vs 36 KB on TPC-DS q55).
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    llvm::Value* acc = fn->getArg(0);
    llvm::BasicBlock* prev = &fn->getEntryBlock();
    for (int loop = 0; loop < 6; ++loop) {
      auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
      auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
      auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
      b.SetInsertPoint(prev);
      // Some block-local temporaries before entering the loop.
      llvm::Value* t = acc;
      for (int k = 0; k < 8; ++k) {
        t = b.CreateAdd(b.CreateMul(t, b.getInt64(3)), b.getInt64(k));
      }
      b.CreateBr(head);
      b.SetInsertPoint(head);
      auto* i = b.CreatePHI(b.getInt64Ty(), 2);
      auto* s = b.CreatePHI(b.getInt64Ty(), 2);
      auto* cond = b.CreateICmpSLT(i, b.getInt64(4));
      b.CreateCondBr(cond, body, exit);
      b.SetInsertPoint(body);
      auto* s2 = b.CreateAdd(s, b.CreateXor(i, t));
      auto* i2 = b.CreateAdd(i, b.getInt64(1));
      b.CreateBr(head);
      i->addIncoming(b.getInt64(0), prev);
      i->addIncoming(i2, body);
      s->addIncoming(t, prev);
      s->addIncoming(s2, body);
      acc = s;
      prev = exit;
    }
    b.SetInsertPoint(prev);
    b.CreateRet(acc);
  };

  auto size_for = [&](RegAllocStrategy strategy) {
    IrModule mod("m");
    gen(&mod);
    TranslatorOptions options;
    options.strategy = strategy;
    options.window_size = 4;
    return TranslateToBytecode(*mod.module().getFunction("f"),
                               TestRegistry(), options)
        .register_file_size;
  };
  uint32_t loop_aware = size_for(RegAllocStrategy::kLoopAware);
  uint32_t window = size_for(RegAllocStrategy::kWindow);
  uint32_t no_reuse = size_for(RegAllocStrategy::kNoReuse);
  EXPECT_LT(loop_aware, window);
  EXPECT_LT(window, no_reuse);

  // All strategies must still execute correctly.
  ExpectAllEnginesAgree(gen, 3, 0, /*include_jit=*/false);
}

// --- randomized differential testing -----------------------------------------

/// Generates a random, structured, terminating function exercising i64/i32
/// arithmetic, comparisons, selects, phis (if-else joins and loop
/// accumulators), overflow intrinsics with branch, fused and unfused memory
/// access through the buffer argument, and runtime calls.
class RandomProgramGen {
 public:
  explicit RandomProgramGen(uint64_t seed) : seed_(seed) {}

  void operator()(IrModule* mod) const {
    Random rng(seed_);
    auto& ctx = mod->context();
    llvm::IRBuilder<> b(ctx);
    llvm::Function* fn = MakeF(mod, &b);
    auto* i64 = llvm::Type::getInt64Ty(ctx);
    auto* mix2 = llvm::Function::Create(
        llvm::FunctionType::get(i64, {i64, i64}, false),
        llvm::Function::ExternalLinkage, "test_mix2", &mod->module());
    auto* mix3 = llvm::Function::Create(
        llvm::FunctionType::get(i64, {i64, i64, i64}, false),
        llvm::Function::ExternalLinkage, "test_mix3", &mod->module());

    std::vector<llvm::Value*> pool = {fn->getArg(0), fn->getArg(1),
                                      b.getInt64(12345),
                                      b.getInt64(static_cast<uint64_t>(-7))};
    auto pick = [&]() {
      return pool[rng.NextBelow(pool.size())];
    };

    int budget = 12 + static_cast<int>(rng.NextBelow(20));
    for (int step = 0; step < budget; ++step) {
      switch (rng.NextBelow(10)) {
        case 0: {  // plain arithmetic
          llvm::Value* x = pick();
          llvm::Value* y = pick();
          switch (rng.NextBelow(6)) {
            case 0: pool.push_back(b.CreateAdd(x, y)); break;
            case 1: pool.push_back(b.CreateSub(x, y)); break;
            case 2: pool.push_back(b.CreateMul(x, y)); break;
            case 3: pool.push_back(b.CreateAnd(x, y)); break;
            case 4: pool.push_back(b.CreateOr(x, y)); break;
            default: pool.push_back(b.CreateXor(x, y)); break;
          }
          break;
        }
        case 1: {  // shift by bounded amount
          llvm::Value* amt = b.CreateAnd(pick(), b.getInt64(15));
          pool.push_back(rng.NextBool(0.5) ? b.CreateShl(pick(), amt)
                                           : b.CreateAShr(pick(), amt));
          break;
        }
        case 2: {  // guarded division
          llvm::Value* den = b.CreateOr(pick(), b.getInt64(1));
          pool.push_back(rng.NextBool(0.5) ? b.CreateSDiv(pick(), den)
                                           : b.CreateSRem(pick(), den));
          break;
        }
        case 3: {  // i32 round trip
          llvm::Value* x32 = b.CreateTrunc(pick(), b.getInt32Ty());
          llvm::Value* y32 = b.CreateTrunc(pick(), b.getInt32Ty());
          llvm::Value* r32 = rng.NextBool(0.5) ? b.CreateMul(x32, y32)
                                               : b.CreateAdd(x32, y32);
          pool.push_back(rng.NextBool(0.5)
                             ? b.CreateSExt(r32, i64)
                             : b.CreateZExt(r32, i64));
          break;
        }
        case 4: {  // compare + select/zext
          llvm::Value* c =
              rng.NextBool(0.5) ? b.CreateICmpSLT(pick(), pick())
                                : b.CreateICmpULE(pick(), pick());
          pool.push_back(rng.NextBool(0.5)
                             ? b.CreateSelect(c, pick(), pick())
                             : b.CreateZExt(c, i64));
          break;
        }
        case 5: {  // buffer load (fusable)
          llvm::Value* idx = b.CreateAnd(pick(), b.getInt64(63));
          auto* gep = b.CreateGEP(i64, fn->getArg(2), idx);
          pool.push_back(b.CreateLoad(i64, gep));
          break;
        }
        case 6: {  // buffer store
          llvm::Value* idx = b.CreateAnd(pick(), b.getInt64(63));
          auto* gep = b.CreateGEP(i64, fn->getArg(2), idx);
          b.CreateStore(pick(), gep);
          break;
        }
        case 7: {  // runtime call
          pool.push_back(
              rng.NextBool(0.5)
                  ? b.CreateCall(mix2, {pick(), pick()})
                  : b.CreateCall(mix3, {pick(), pick(), pick()}));
          break;
        }
        case 8: {  // if-else with phi join
          auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
          auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
          auto* join_bb = llvm::BasicBlock::Create(ctx, "j", fn);
          auto* cond = b.CreateICmpSGT(pick(), pick());
          b.CreateCondBr(cond, then_bb, else_bb);
          b.SetInsertPoint(then_bb);
          auto* tv = b.CreateAdd(pick(), b.getInt64(rng.Next() & 0xFF));
          b.CreateBr(join_bb);
          b.SetInsertPoint(else_bb);
          auto* ev = b.CreateXor(pick(), b.getInt64(rng.Next() & 0xFF));
          b.CreateBr(join_bb);
          b.SetInsertPoint(join_bb);
          auto* phi = b.CreatePHI(i64, 2);
          phi->addIncoming(tv, then_bb);
          phi->addIncoming(ev, else_bb);
          pool.push_back(phi);
          break;
        }
        default: {  // bounded loop with accumulator phi
          auto* pre = b.GetInsertBlock();
          auto* head = llvm::BasicBlock::Create(ctx, "lh", fn);
          auto* body = llvm::BasicBlock::Create(ctx, "lb", fn);
          auto* exit = llvm::BasicBlock::Create(ctx, "lx", fn);
          uint64_t trips = 1 + rng.NextBelow(6);
          llvm::Value* seed_val = pick();
          b.CreateBr(head);
          b.SetInsertPoint(head);
          auto* i = b.CreatePHI(i64, 2);
          auto* acc = b.CreatePHI(i64, 2);
          auto* cond = b.CreateICmpULT(i, b.getInt64(trips));
          b.CreateCondBr(cond, body, exit);
          b.SetInsertPoint(body);
          auto* step_v = b.CreateMul(acc, b.getInt64(3));
          auto* acc2 = b.CreateAdd(step_v, i);
          auto* i2 = b.CreateAdd(i, b.getInt64(1));
          b.CreateBr(head);
          b.SetInsertPoint(exit);
          i->addIncoming(b.getInt64(0), pre);
          i->addIncoming(i2, body);
          acc->addIncoming(seed_val, pre);
          acc->addIncoming(acc2, body);
          pool.push_back(acc);
          break;
        }
      }
    }

    // Occasionally end with an overflow-checked op on masked operands.
    if (rng.NextBool(0.6)) {
      auto* ovf_bb = llvm::BasicBlock::Create(ctx, "ovf", fn);
      auto* cont_bb = llvm::BasicBlock::Create(ctx, "cont", fn);
      auto* x = b.CreateAnd(pick(), b.getInt64(0xFFFFFFFFull));
      auto* y = b.CreateAnd(pick(), b.getInt64(0xFFFFFFFFull));
      auto* pair = b.CreateBinaryIntrinsic(
          rng.NextBool(0.5) ? llvm::Intrinsic::smul_with_overflow
                            : llvm::Intrinsic::sadd_with_overflow,
          x, y);
      auto* val = b.CreateExtractValue(pair, 0);
      auto* flag = b.CreateExtractValue(pair, 1);
      b.CreateCondBr(flag, ovf_bb, cont_bb);
      b.SetInsertPoint(ovf_bb);
      b.CreateRet(b.getInt64(0xDEADull));
      b.SetInsertPoint(cont_bb);
      pool.push_back(val);
    }

    // Mix the last few pool values into the return value.
    llvm::Value* result = b.getInt64(0);
    size_t n = pool.size();
    for (size_t k = n >= 6 ? n - 6 : 0; k < n; ++k) {
      result = b.CreateXor(b.CreateMul(result, b.getInt64(31)), pool[k]);
    }
    b.CreateRet(result);
  }

 private:
  uint64_t seed_;
};

TEST(VmJitRandomTest, VmVariantsMatchNaive) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    RandomProgramGen gen(seed);
    Random args(seed + 1000);
    ExpectAllEnginesAgree(gen, args.Next(), args.Next(),
                          /*include_jit=*/false);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing seed: " << seed;
      break;
    }
  }
}

TEST(VmJitRandomTest, AllEnginesIncludingJit) {
  for (uint64_t seed = 100; seed < 108; ++seed) {
    RandomProgramGen gen(seed);
    Random args(seed + 2000);
    ExpectAllEnginesAgree(gen, args.Next(), args.Next(),
                          /*include_jit=*/true);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing seed: " << seed;
      break;
    }
  }
}

}  // namespace
}  // namespace aqe
