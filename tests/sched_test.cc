#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "adaptive/controller.h"
#include "adaptive/cost_model.h"
#include "exec/function_handle.h"
#include "exec/morsel.h"
#include "exec/scheduler.h"
#include "sched/scheduler.h"
#include "sched/stealing_deque.h"
#include "sched/task.h"

namespace aqe {
namespace {

// --- StealingDeque (deterministic, single-threaded) -----------------------

class TagTask : public Task {
 public:
  explicit TagTask(int tag) : tag_(tag) {}
  Status Run(int) override { return Status::kDone; }
  int tag() const { return tag_; }

 private:
  int tag_;
};

int TagOf(Task* task) { return static_cast<TagTask*>(task)->tag(); }

TEST(StealingDequeTest, LocalEndIsLifo) {
  StealingDeque deque;
  TagTask a(1), b(2), c(3);
  deque.PushLocal(&a);
  deque.PushLocal(&b);
  deque.PushLocal(&c);
  EXPECT_EQ(TagOf(deque.PopLocal()), 3);
  EXPECT_EQ(TagOf(deque.PopLocal()), 2);
  EXPECT_EQ(TagOf(deque.PopLocal()), 1);
  EXPECT_EQ(deque.PopLocal(), nullptr);
}

TEST(StealingDequeTest, StealEndIsFifo) {
  StealingDeque deque;
  TagTask a(1), b(2), c(3);
  deque.PushLocal(&a);
  deque.PushLocal(&b);
  deque.PushLocal(&c);
  // Thieves take the oldest task first.
  EXPECT_EQ(TagOf(deque.Steal()), 1);
  EXPECT_EQ(TagOf(deque.Steal()), 2);
  EXPECT_EQ(TagOf(deque.Steal()), 3);
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(StealingDequeTest, YieldedTasksGoToStealEnd) {
  StealingDeque deque;
  TagTask a(1), b(2), yielded(99);
  deque.PushLocal(&a);
  deque.PushLocal(&b);
  deque.PushSteal(&yielded);
  // The owner reaches the yielded task last...
  EXPECT_EQ(TagOf(deque.PopLocal()), 2);
  EXPECT_EQ(TagOf(deque.PopLocal()), 1);
  EXPECT_EQ(TagOf(deque.PopLocal()), 99);
  // ...while a thief would have taken it first.
  deque.PushLocal(&a);
  deque.PushSteal(&yielded);
  EXPECT_EQ(TagOf(deque.Steal()), 99);
  EXPECT_EQ(TagOf(deque.Steal()), 1);
}

// --- TaskScheduler --------------------------------------------------------

TEST(TaskSchedulerTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  std::promise<void> all_done;
  TaskScheduler sched(3);
  for (int i = 0; i < 100; ++i) {
    sched.Submit(MakeClosureTask([&](int worker) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, 3);
      EXPECT_EQ(TaskScheduler::CurrentWorker(), worker);
      EXPECT_EQ(TaskScheduler::CurrentScheduler(), &sched);
      if (count.fetch_add(1) + 1 == 100) all_done.set_value();
    }));
  }
  all_done.get_future().wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(sched.executed_slices(), 100u);
}

TEST(TaskSchedulerTest, ExternalThreadIsNotAWorker) {
  EXPECT_EQ(TaskScheduler::CurrentWorker(), -1);
  EXPECT_EQ(TaskScheduler::CurrentScheduler(), nullptr);
}

class YieldNTimesTask : public Task {
 public:
  YieldNTimesTask(int n, std::atomic<int>* slices, std::promise<void>* done)
      : remaining_(n), slices_(slices), done_(done) {}
  Status Run(int) override {
    slices_->fetch_add(1);
    if (--remaining_ > 0) return Status::kYield;
    done_->set_value();
    return Status::kDone;
  }

 private:
  int remaining_;
  std::atomic<int>* slices_;
  std::promise<void>* done_;
};

TEST(TaskSchedulerTest, YieldedTaskResumesUntilDone) {
  std::atomic<int> slices{0};
  std::promise<void> done;
  TaskScheduler sched(1);
  sched.Submit(std::make_unique<YieldNTimesTask>(5, &slices, &done));
  done.get_future().wait();
  EXPECT_EQ(slices.load(), 5);
}

TEST(TaskSchedulerTest, LowPriorityRunsDespiteEndlessNormalWork) {
  // A morsel-like task that yields forever keeps the normal deque non-
  // empty; the periodic low-priority tick must still run the low task.
  // (The scheduler is declared last: its destructor joins the workers
  // while the captured locals are still alive.)
  std::atomic<bool> low_ran{false};
  std::promise<void> low_done;
  TaskScheduler sched(1);

  class EndlessTask : public Task {
   public:
    explicit EndlessTask(std::atomic<bool>* stop) : stop_(stop) {}
    Status Run(int) override {
      return stop_->load() ? Status::kDone : Status::kYield;
    }

   private:
    std::atomic<bool>* stop_;
  };

  sched.Submit(std::make_unique<EndlessTask>(&low_ran));
  sched.Submit(MakeClosureTask([&](int) {
                 low_ran.store(true);
                 low_done.set_value();
               }),
               TaskPriority::kLow);
  auto status = low_done.get_future().wait_for(std::chrono::seconds(10));
  EXPECT_EQ(status, std::future_status::ready);
}

/// Counts its own slices and yields until told to stop.
class CountedYieldTask : public Task {
 public:
  CountedYieldTask(std::atomic<uint64_t>* count, std::atomic<bool>* stop,
                   std::promise<void>* done)
      : count_(count), stop_(stop), done_(done) {}
  Status Run(int) override {
    if (stop_->load()) {
      done_->set_value();
      return Status::kDone;
    }
    count_->fetch_add(1);
    return Status::kYield;
  }

 private:
  std::atomic<uint64_t>* count_;
  std::atomic<bool>* stop_;
  std::promise<void>* done_;
};

TEST(TaskSchedulerTest, WeightedClassesShareSlicesProportionally) {
  // Two endless yielders in different classes on one worker: the weight-4
  // class must receive ~4x the slices of the weight-1 class.
  std::atomic<uint64_t> slices1{0}, slices2{0};
  std::atomic<bool> stop{false};
  std::promise<void> done1, done2;
  TaskScheduler sched(1);
  sched.set_class_weight(1, 1);
  sched.set_class_weight(2, 4);
  auto t1 = std::make_unique<CountedYieldTask>(&slices1, &stop, &done1);
  t1->set_scheduling_class(1);
  auto t2 = std::make_unique<CountedYieldTask>(&slices2, &stop, &done2);
  t2->set_scheduling_class(2);
  sched.Submit(std::move(t1));
  sched.Submit(std::move(t2));
  while (slices1.load() + slices2.load() < 5000) std::this_thread::yield();
  stop.store(true);
  done1.get_future().wait();
  done2.get_future().wait();
  const double ratio = static_cast<double>(slices2.load()) /
                       static_cast<double>(std::max<uint64_t>(1, slices1.load()));
  EXPECT_GT(ratio, 2.0) << slices1.load() << " vs " << slices2.load();
  EXPECT_LT(ratio, 8.0) << slices1.load() << " vs " << slices2.load();
  // Per-class accounting covers every counted slice (the final kDone slices
  // may still be mid-bookkeeping when the promise resolves, so >=).
  EXPECT_GE(sched.class_slices(1) + sched.class_slices(2),
            slices1.load() + slices2.load());
}

TEST(TaskSchedulerTest, IdleClassDoesNotBankCredit) {
  // Class 1 runs alone for a while; when class 2 wakes up, its clock is
  // clamped forward — it must not lock class 1 out while "catching up" on
  // credit it banked while idle.
  std::atomic<uint64_t> slices1{0}, slices2{0};
  std::atomic<bool> stop{false};
  std::promise<void> done1, done2;
  TaskScheduler sched(1);
  auto t1 = std::make_unique<CountedYieldTask>(&slices1, &stop, &done1);
  t1->set_scheduling_class(1);
  sched.Submit(std::move(t1));
  while (slices1.load() < 3000) std::this_thread::yield();

  auto t2 = std::make_unique<CountedYieldTask>(&slices2, &stop, &done2);
  t2->set_scheduling_class(2);
  sched.Submit(std::move(t2));
  const uint64_t base1 = slices1.load();
  while (slices2.load() < 500) std::this_thread::yield();
  // Class 1 kept running during class 2's 500 slices (equal weights → the
  // two alternate; a banked-credit bug would give class 2 thousands of
  // slices first).
  EXPECT_GT(slices1.load(), base1 + 100);
  stop.store(true);
  done1.get_future().wait();
  done2.get_future().wait();
}

TEST(TaskSchedulerTest, StealOrderIsSubmissionOrder) {
  // Gate one worker with a blocking task (either worker may pick it up —
  // steals included), queue tagged tasks on the gated worker's deque, and
  // watch the other worker steal them: oldest first (FIFO steal).
  // Captured locals are declared before the scheduler so they outlive its
  // workers.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::promise<int> gated_on;
  std::mutex order_mutex;
  std::vector<int> order;
  std::promise<void> all_stolen;
  TaskScheduler sched(2);
  sched.SubmitTo(0, MakeClosureTask([&](int worker) {
    gated_on.set_value(worker);
    gate_future.wait();
  }));
  const int gated_worker = gated_on.get_future().get();  // now pinned
  const int free_worker = 1 - gated_worker;
  for (int tag = 1; tag <= 3; ++tag) {
    sched.SubmitTo(gated_worker, MakeClosureTask([&, tag](int worker) {
      EXPECT_EQ(worker, free_worker);  // only the other worker is free
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
      if (order.size() == 3) all_stolen.set_value();
    }));
  }
  all_stolen.get_future().wait();
  gate.set_value();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TaskSchedulerTest, ShutdownWithTasksPendingDestroysThemUnrun) {
  std::atomic<int> ran{0};
  std::atomic<int> destroyed{0};

  class CountedTask : public Task {
   public:
    CountedTask(std::atomic<int>* ran, std::atomic<int>* destroyed)
        : ran_(ran), destroyed_(destroyed) {}
    ~CountedTask() override { destroyed_->fetch_add(1); }
    Status Run(int) override {
      ran_->fetch_add(1);
      return Status::kDone;
    }

   private:
    std::atomic<int>* ran_;
    std::atomic<int>* destroyed_;
  };

  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::promise<void> gated0, gated1;
  {
    TaskScheduler sched(2);
    sched.SubmitTo(0, MakeClosureTask([&](int) {
      gated0.set_value();
      gate_future.wait();
    }));
    sched.SubmitTo(1, MakeClosureTask([&](int) {
      gated1.set_value();
      gate_future.wait();
    }));
    gated0.get_future().wait();
    gated1.get_future().wait();
    // Both workers are pinned; these can never start before shutdown.
    for (int i = 0; i < 50; ++i) {
      sched.SubmitTo(i % 2, std::make_unique<CountedTask>(&ran, &destroyed));
    }
    std::thread release([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate.set_value();
    });
    // The destructor must not hang and must destroy all pending tasks.
    release.detach();
  }
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(destroyed.load(), 50);
}

// --- ShardedMorselQueue ---------------------------------------------------

TEST(ShardedMorselQueueTest, CoversDomainExactlyOnceAcrossShards) {
  ShardedMorselQueue queue(100000, 4, 512);
  std::vector<bool> seen(100000, false);
  MorselRange m;
  int shard = 0;
  while (queue.Next(shard, &m)) {
    shard = (shard + 1) % 4;
    for (uint64_t i = m.begin; i < m.end; ++i) {
      ASSERT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) ASSERT_TRUE(s);
  EXPECT_EQ(queue.remaining(), 0u);
}

TEST(ShardedMorselQueueTest, PreferredShardFirstThenSteal) {
  ShardedMorselQueue queue(4000, 4, 100, 100, 1000000);
  // Shard 2 owns [2000, 3000): the first claim must come from there.
  MorselRange m;
  ASSERT_TRUE(queue.Next(2, &m));
  EXPECT_EQ(m.begin, 2000u);
  // Drain shard 2 completely; the next claim for shard 2 must steal from
  // another (richest) shard instead of failing.
  while (queue.shard_remaining(2) > 0) ASSERT_TRUE(queue.Next(2, &m));
  ASSERT_TRUE(queue.Next(2, &m));
  EXPECT_TRUE(m.begin < 2000 || m.begin >= 3000);
  EXPECT_EQ(queue.remaining(), 4000u - 100 * (1000 / 100 + 1));
}

TEST(ShardedMorselQueueTest, ConcurrentClaimsNoOverlap) {
  ShardedMorselQueue queue(1 << 18, 3, 256);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&queue, &total, t] {
      MorselRange m;
      while (queue.Next(t, &m)) total += m.end - m.begin;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), uint64_t{1} << 18);
}

TEST(ShardedMorselQueueTest, SingleShardEqualsFlatQueue) {
  ShardedMorselQueue sharded(50000, 1, 1024);
  MorselQueue flat(50000, 1024);
  MorselRange a, b;
  while (flat.Next(&a)) {
    ASSERT_TRUE(sharded.Next(0, &b));
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.end, b.end);
  }
  EXPECT_FALSE(sharded.Next(0, &b));
}

// --- Differential: task-scheduler path vs legacy gang path ----------------
//
// The mode-switch handshake (decide -> compile -> install -> rate reset)
// must behave identically on both substrates: same mode-switch sequence,
// same final mode, every tuple processed exactly once. Cost-model
// parameters force deterministic decisions.

struct SyntheticPipeline {
  std::atomic<uint64_t> interpreted_tuples{0};
  std::atomic<uint64_t> unopt_tuples{0};
  std::atomic<uint64_t> opt_tuples{0};

  static void SlowInterp(void* state, uint64_t begin, uint64_t end,
                         const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->interpreted_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 100));
  }
  static void FastUnopt(void* state, uint64_t begin, uint64_t end,
                        const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->unopt_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 25));
  }
  static void FastOpt(void* state, uint64_t begin, uint64_t end,
                      const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->opt_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 18));
  }
};

struct DifferentialOutcome {
  std::vector<ExecMode> switches;
  ExecMode final_mode;
  uint64_t interpreted, unopt, opt;
};

template <typename Substrate>
DifferentialOutcome RunSynthetic(Substrate* substrate,
                                 ExecutionStrategy strategy,
                                 const CostModelParams& params,
                                 uint64_t total_tuples) {
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineRunner runner(substrate, strategy, params);
  runner.set_first_evaluation_delay_seconds(0);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = total_tuples;
  task.function_instructions = 1000;
  task.compile = [](ExecMode mode) -> WorkerFn {
    return mode == ExecMode::kUnoptimized ? &SyntheticPipeline::FastUnopt
                                          : &SyntheticPipeline::FastOpt;
  };
  PipelineRunStats stats = runner.Run(task);
  DifferentialOutcome outcome;
  for (const auto& [mode, seconds] : stats.compiles) {
    outcome.switches.push_back(mode);
  }
  outcome.final_mode = stats.final_mode;
  outcome.interpreted = pipe.interpreted_tuples.load();
  outcome.unopt = pipe.unopt_tuples.load();
  outcome.opt = pipe.opt_tuples.load();
  return outcome;
}

class SchedulerDifferentialTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 2000000;

  void Compare(ExecutionStrategy strategy, const CostModelParams& params,
               const std::vector<ExecMode>& expected_switches) {
    WorkerPool pool(2);
    TaskScheduler sched(2);
    DifferentialOutcome legacy =
        RunSynthetic(&pool, strategy, params, kTuples);
    DifferentialOutcome tasks =
        RunSynthetic(&sched, strategy, params, kTuples);

    EXPECT_EQ(legacy.switches, expected_switches);
    EXPECT_EQ(tasks.switches, expected_switches);
    EXPECT_EQ(legacy.final_mode, tasks.final_mode);
    EXPECT_EQ(legacy.interpreted + legacy.unopt + legacy.opt, kTuples);
    EXPECT_EQ(tasks.interpreted + tasks.unopt + tasks.opt, kTuples);
  }
};

TEST_F(SchedulerDifferentialTest, ForcedUnoptimizedSwitch) {
  CostModelParams params;
  params.unopt_base_seconds = 0;
  params.unopt_per_instruction_seconds = 0;
  params.opt_base_seconds = 1e9;  // optimized can never win
  Compare(ExecutionStrategy::kAdaptive, params, {ExecMode::kUnoptimized});
}

TEST_F(SchedulerDifferentialTest, ForcedStraightToOptimized) {
  CostModelParams params;
  params.unopt_base_seconds = 1e9;  // unoptimized can never win
  params.opt_base_seconds = 0;
  params.opt_per_instruction_seconds = 0;
  Compare(ExecutionStrategy::kAdaptive, params, {ExecMode::kOptimized});
}

TEST_F(SchedulerDifferentialTest, BytecodeNeverSwitches) {
  CostModelParams params;
  Compare(ExecutionStrategy::kBytecode, params, {});
}

TEST_F(SchedulerDifferentialTest, StaticOptimizedCompilesUpFront) {
  CostModelParams params;
  WorkerPool pool(2);
  TaskScheduler sched(2);
  DifferentialOutcome legacy = RunSynthetic(
      &pool, ExecutionStrategy::kOptimized, params, uint64_t{200000});
  DifferentialOutcome tasks = RunSynthetic(
      &sched, ExecutionStrategy::kOptimized, params, uint64_t{200000});
  EXPECT_EQ(legacy.switches, (std::vector<ExecMode>{ExecMode::kOptimized}));
  EXPECT_EQ(tasks.switches, (std::vector<ExecMode>{ExecMode::kOptimized}));
  EXPECT_EQ(legacy.interpreted, 0u);
  EXPECT_EQ(tasks.interpreted, 0u);
  EXPECT_EQ(tasks.opt, 200000u);
}

TEST_F(SchedulerDifferentialTest, SingleThreadedTaskPathSwitchesInline) {
  CostModelParams params;
  params.unopt_base_seconds = 0;
  params.unopt_per_instruction_seconds = 0;
  params.opt_base_seconds = 1e9;
  TaskScheduler sched(2);
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineRunner runner(&sched, ExecutionStrategy::kAdaptive, params);
  runner.set_first_evaluation_delay_seconds(0);
  runner.set_single_threaded(true);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = kTuples;
  task.function_instructions = 1000;
  task.compile = [](ExecMode mode) -> WorkerFn {
    EXPECT_EQ(mode, ExecMode::kUnoptimized);
    return &SyntheticPipeline::FastUnopt;
  };
  PipelineRunStats stats = runner.Run(task);
  EXPECT_EQ(stats.final_mode, ExecMode::kUnoptimized);
  EXPECT_EQ(pipe.interpreted_tuples.load() + pipe.unopt_tuples.load(),
            kTuples);
  // Strictly single-threaded: the helpers never saw this pipeline, so
  // everything ran on the calling thread (no way to assert thread identity
  // directly here, but opt tuples must be zero and a switch must exist).
  EXPECT_EQ(pipe.opt_tuples.load(), 0u);
  ASSERT_EQ(stats.compiles.size(), 1u);
}

}  // namespace
}  // namespace aqe
