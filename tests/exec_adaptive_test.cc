#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "adaptive/calibrate.h"
#include "adaptive/controller.h"
#include "adaptive/cost_model.h"
#include "exec/function_handle.h"
#include "exec/morsel.h"
#include "exec/scheduler.h"
#include "exec/trace.h"

namespace aqe {
namespace {

// --- MorselQueue ----------------------------------------------------------

TEST(MorselQueueTest, CoversDomainExactlyOnce) {
  MorselQueue queue(100000, 1024);
  std::vector<bool> seen(100000, false);
  MorselRange m;
  while (queue.Next(&m)) {
    for (uint64_t i = m.begin; i < m.end; ++i) {
      ASSERT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) ASSERT_TRUE(s);
  EXPECT_EQ(queue.remaining(), 0u);
}

TEST(MorselQueueTest, GrowingMorselSizes) {
  MorselQueue queue(1 << 20, 1024, 16384, 4);
  MorselRange m;
  ASSERT_TRUE(queue.Next(&m));
  EXPECT_EQ(m.end - m.begin, 1024u);
  uint64_t max_seen = 0;
  while (queue.Next(&m)) max_seen = std::max(max_seen, m.end - m.begin);
  EXPECT_EQ(max_seen, 16384u);
}

TEST(MorselQueueTest, ConcurrentWorkStealingNoOverlap) {
  MorselQueue queue(1 << 18, 512);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&queue, &total] {
      MorselRange m;
      while (queue.Next(&m)) total += m.end - m.begin;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), uint64_t{1} << 18);
}

TEST(MorselQueueTest, EmptyDomain) {
  MorselQueue queue(0);
  MorselRange m;
  EXPECT_FALSE(queue.Next(&m));
}

// Dynamic morsel-size growth boundaries: the size doubles after every
// `grow_every` morsels of each size, is a pure function of the cursor
// position, clamps at `max_size`, and the final morsel may be partial.

TEST(MorselQueueTest, GrowthBoundarySchedule) {
  // initial 4, grow_every 2, max 16: sizes 4,4,8,8,16,16,16,...
  MorselQueue queue(100, 4, 16, 2);
  EXPECT_EQ(queue.SizeAt(0), 4u);
  EXPECT_EQ(queue.SizeAt(7), 4u);   // still inside the first 2 morsels
  EXPECT_EQ(queue.SizeAt(8), 8u);   // first boundary: 2 * 4
  EXPECT_EQ(queue.SizeAt(23), 8u);  // 8 + 2*8 = 24 is the next boundary
  EXPECT_EQ(queue.SizeAt(24), 16u);
  EXPECT_EQ(queue.SizeAt(1000), 16u);  // clamped forever after

  std::vector<uint64_t> sizes;
  MorselRange m;
  while (queue.Next(&m)) sizes.push_back(m.end - m.begin);
  // Positions 0,4 | 8,16 | 24,40,56,72,88 — the tail morsel is partial.
  EXPECT_EQ(sizes, (std::vector<uint64_t>{4, 4, 8, 8, 16, 16, 16, 16, 12}));
}

TEST(MorselQueueTest, ClampsAtMaxSizeEvenWhenNotPowerOfTwoMultiple) {
  // max_size 24 is not initial * 2^k: growth must clamp to exactly 24.
  MorselQueue queue(1000, 10, 24, 1);
  std::vector<uint64_t> sizes;
  MorselRange m;
  while (queue.Next(&m)) sizes.push_back(m.end - m.begin);
  // 10, then 20, then clamp: min(40, 24) = 24 for the rest.
  EXPECT_EQ(sizes[0], 10u);
  EXPECT_EQ(sizes[1], 20u);
  for (size_t i = 2; i + 1 < sizes.size(); ++i) EXPECT_EQ(sizes[i], 24u);
  EXPECT_LE(sizes.back(), 24u);
}

TEST(MorselQueueTest, LastMorselIsPartial) {
  MorselQueue queue(2500, 1024);
  MorselRange m;
  uint64_t last = 0, covered = 0;
  while (queue.Next(&m)) {
    last = m.end - m.begin;
    covered += m.end - m.begin;
    EXPECT_LE(m.end, 2500u);
  }
  EXPECT_EQ(covered, 2500u);
  EXPECT_EQ(last, 2500u % 1024);  // 452-row partial tail
}

// --- FunctionHandle ----------------------------------------------------------

struct HandleProbe {
  std::atomic<int> interpreted{0};
  std::atomic<int> compiled{0};
};

void FakeInterpreter(void* state, uint64_t, uint64_t, const void* extra) {
  EXPECT_NE(extra, nullptr);
  static_cast<HandleProbe*>(state)->interpreted++;
}
void FakeCompiled(void* state, uint64_t, uint64_t, const void*) {
  static_cast<HandleProbe*>(state)->compiled++;
}

TEST(FunctionHandleTest, SwitchesVariantMidStream) {
  int program_marker = 0;
  FunctionHandle handle(&FakeInterpreter, &program_marker);
  EXPECT_FALSE(handle.is_compiled());
  HandleProbe probe;
  handle.Call(&probe, 0, 10);
  EXPECT_EQ(probe.interpreted.load(), 1);
  handle.SetCompiled(&FakeCompiled, ExecMode::kUnoptimized);
  EXPECT_TRUE(handle.is_compiled());
  EXPECT_EQ(handle.mode(), ExecMode::kUnoptimized);
  handle.Call(&probe, 10, 20);
  EXPECT_EQ(probe.compiled.load(), 1);
  EXPECT_EQ(probe.interpreted.load(), 1);
}

// --- WorkerPool ---------------------------------------------------------------

TEST(WorkerPoolTest, RunsOnAllThreads) {
  WorkerPool pool(4);
  std::set<int> indices;
  std::mutex mutex;
  pool.RunParallel([&](int thread) {
    std::lock_guard<std::mutex> lock(mutex);
    indices.insert(thread);
  });
  EXPECT_EQ(indices, (std::set<int>{0, 1, 2, 3}));
}

TEST(WorkerPoolTest, ReusableAcrossRuns) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    pool.RunParallel([&](int) { count++; });
  }
  EXPECT_EQ(count.load(), 20);
}

// --- Cost model (Fig 7) --------------------------------------------------------

TEST(CostModelTest, TinyPipelineStaysInterpreted) {
  CostModelParams params;
  // 1k tuples at 1M tuples/s/thread: 1 ms of work left — never compile.
  EXPECT_EQ(ExtrapolatePipelineDurations(1e6, 1000, 4, 5000,
                                         ExecMode::kBytecode, params),
            Decision::kDoNothing);
}

TEST(CostModelTest, HugePipelineCompilesOptimized) {
  CostModelParams params;
  // 1B tuples remaining: optimized compilation must dominate.
  EXPECT_EQ(ExtrapolatePipelineDurations(1e6, 1000000000ull, 4, 5000,
                                         ExecMode::kBytecode, params),
            Decision::kCompileOptimized);
}

TEST(CostModelTest, MediumPipelineCompilesUnoptimized) {
  CostModelParams params;
  params.unopt_base_seconds = 5e-3;
  params.opt_base_seconds = 50e-3;
  // Work worth ~30ms of interpretation: unoptimized pays off, optimized
  // compilation alone costs more than the remaining work.
  Decision d = ExtrapolatePipelineDurations(1e6, 120000, 1, 1000,
                                            ExecMode::kBytecode, params);
  EXPECT_EQ(d, Decision::kCompileUnoptimized);
}

TEST(CostModelTest, UpgradesFromUnoptimizedOnlyToOptimized) {
  CostModelParams params;
  EXPECT_EQ(ExtrapolatePipelineDurations(3.6e6, 2000000000ull, 4, 5000,
                                         ExecMode::kUnoptimized, params),
            Decision::kCompileOptimized);
  EXPECT_EQ(ExtrapolatePipelineDurations(3.6e6, 1000, 4, 5000,
                                         ExecMode::kUnoptimized, params),
            Decision::kDoNothing);
}

TEST(CostModelTest, OptimizedNeverSwitches) {
  CostModelParams params;
  EXPECT_EQ(ExtrapolatePipelineDurations(5e6, 1ull << 40, 4, 5000,
                                         ExecMode::kOptimized, params),
            Decision::kDoNothing);
}

TEST(CostModelTest, ZeroRemainingOrZeroRate) {
  CostModelParams params;
  EXPECT_EQ(ExtrapolatePipelineDurations(1e6, 0, 4, 100,
                                         ExecMode::kBytecode, params),
            Decision::kDoNothing);
  EXPECT_EQ(ExtrapolatePipelineDurations(0, 100, 4, 100,
                                         ExecMode::kBytecode, params),
            Decision::kDoNothing);
}

TEST(CostModelTest, WorkerCountChangesTheBreakEvenPoint) {
  // Fig 7 models that during compilation the other w-1 threads keep
  // draining the pipeline. Consequences, both checked here:
  //  (a) with one worker, a pipeline worth ~2x the compile time is still
  //      worth compiling (the compiled code recoups the stall);
  //  (b) with many workers, the same pipeline drains before compilation
  //      would finish, so the model correctly refuses to compile.
  CostModelParams params;
  uint64_t n = 400000;  // 0.4 s of single-threaded interpretation at 1M/s
  Decision single = ExtrapolatePipelineDurations(1e6, n, 1, 20000,
                                                 ExecMode::kBytecode, params);
  Decision many = ExtrapolatePipelineDurations(1e6, n, 8, 20000,
                                               ExecMode::kBytecode, params);
  EXPECT_NE(single, Decision::kDoNothing);
  EXPECT_EQ(many, Decision::kDoNothing);

  // And with enough remaining work, everyone compiles.
  EXPECT_NE(ExtrapolatePipelineDurations(1e6, 100 * n, 8, 20000,
                                         ExecMode::kBytecode, params),
            Decision::kDoNothing);
}

TEST(CostModelTest, LargerFunctionsRaiseTheBar) {
  CostModelParams params;
  // Same remaining work; a huge function (expensive compile) should stay
  // interpreted while a small one compiles.
  uint64_t n = 300000;
  Decision small_fn = ExtrapolatePipelineDurations(
      1e6, n, 1, 500, ExecMode::kBytecode, params);
  Decision big_fn = ExtrapolatePipelineDurations(
      1e6, n, 1, 2000000, ExecMode::kBytecode, params);
  EXPECT_NE(small_fn, Decision::kDoNothing);
  EXPECT_EQ(big_fn, Decision::kDoNothing);
}

// --- PipelineRunner ------------------------------------------------------------

/// A synthetic "worker function" whose interpreted variant is slow and
/// compiled variants are fast, with per-call counters.
struct SyntheticPipeline {
  std::atomic<uint64_t> interpreted_tuples{0};
  std::atomic<uint64_t> unopt_tuples{0};
  std::atomic<uint64_t> opt_tuples{0};

  static void SlowInterp(void* state, uint64_t begin, uint64_t end,
                         const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->interpreted_tuples += end - begin;
    // ~10M tuples/s.
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 100));
  }
  static void FastUnopt(void* state, uint64_t begin, uint64_t end,
                        const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->unopt_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 25));
  }
  static void FastOpt(void* state, uint64_t begin, uint64_t end,
                      const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->opt_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 18));
  }
};

TEST(PipelineRunnerTest, BytecodeStrategyNeverCompiles) {
  WorkerPool pool(2);
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineRunner runner(&pool, ExecutionStrategy::kBytecode);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = 100000;
  task.function_instructions = 1000;
  task.compile = [](ExecMode) -> WorkerFn {
    ADD_FAILURE() << "bytecode strategy must not compile";
    return nullptr;
  };
  PipelineRunStats stats = runner.Run(task);
  EXPECT_EQ(pipe.interpreted_tuples.load(), 100000u);
  EXPECT_EQ(stats.final_mode, ExecMode::kBytecode);
  EXPECT_TRUE(stats.compiles.empty());
}

TEST(PipelineRunnerTest, StaticOptimizedCompilesUpFront) {
  WorkerPool pool(2);
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineRunner runner(&pool, ExecutionStrategy::kOptimized);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = 50000;
  task.function_instructions = 1000;
  int compile_calls = 0;
  task.compile = [&compile_calls](ExecMode mode) -> WorkerFn {
    ++compile_calls;
    EXPECT_EQ(mode, ExecMode::kOptimized);
    return &SyntheticPipeline::FastOpt;
  };
  PipelineRunStats stats = runner.Run(task);
  EXPECT_EQ(compile_calls, 1);
  EXPECT_EQ(pipe.interpreted_tuples.load(), 0u);
  EXPECT_EQ(pipe.opt_tuples.load(), 50000u);
  EXPECT_EQ(stats.final_mode, ExecMode::kOptimized);
}

TEST(PipelineRunnerTest, AdaptiveSwitchesOnLongPipeline) {
  WorkerPool pool(2);
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  CostModelParams params;
  params.unopt_base_seconds = 1e-3;
  params.unopt_per_instruction_seconds = 0;
  params.opt_base_seconds = 4e-3;
  params.opt_per_instruction_seconds = 0;
  PipelineRunner runner(&pool, ExecutionStrategy::kAdaptive, params);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = 3000000;  // ~300ms of interpretation at 2 threads
  task.function_instructions = 1000;
  task.compile = [](ExecMode mode) -> WorkerFn {
    return mode == ExecMode::kUnoptimized ? &SyntheticPipeline::FastUnopt
                                          : &SyntheticPipeline::FastOpt;
  };
  PipelineRunStats stats = runner.Run(task);
  // All tuples processed exactly once across the modes.
  EXPECT_EQ(pipe.interpreted_tuples.load() + pipe.unopt_tuples.load() +
                pipe.opt_tuples.load(),
            3000000u);
  // It must have decided to compile, starting from bytecode.
  EXPECT_GT(pipe.interpreted_tuples.load(), 0u);
  EXPECT_FALSE(stats.compiles.empty());
  EXPECT_NE(stats.final_mode, ExecMode::kBytecode);
}

TEST(PipelineRunnerTest, AdaptiveLeavesShortPipelineInterpreted) {
  WorkerPool pool(2);
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineRunner runner(&pool, ExecutionStrategy::kAdaptive);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = 4000;  // finishes well under 1 ms of work
  task.function_instructions = 5000;
  task.compile = [](ExecMode) -> WorkerFn {
    ADD_FAILURE() << "short pipeline must not compile";
    return nullptr;
  };
  PipelineRunStats stats = runner.Run(task);
  EXPECT_EQ(stats.final_mode, ExecMode::kBytecode);
  EXPECT_EQ(pipe.interpreted_tuples.load(), 4000u);
}

TEST(PipelineRunnerTest, TraceRecordsMorselsAndCompiles) {
  WorkerPool pool(2);
  TraceRecorder trace;
  trace.Start();
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  CostModelParams params;
  params.unopt_base_seconds = 1e-4;
  params.unopt_per_instruction_seconds = 0;
  PipelineRunner runner(&pool, ExecutionStrategy::kAdaptive, params, &trace);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = 2000000;
  task.function_instructions = 100;
  task.compile = [](ExecMode mode) -> WorkerFn {
    return mode == ExecMode::kUnoptimized ? &SyntheticPipeline::FastUnopt
                                          : &SyntheticPipeline::FastOpt;
  };
  runner.Run(task);
  auto events = trace.Events();
  ASSERT_FALSE(events.empty());
  bool has_morsel = false, has_compile = false;
  for (const auto& e : events) {
    has_morsel |= e.kind == TraceRecorder::EventKind::kMorsel;
    has_compile |= e.kind == TraceRecorder::EventKind::kCompile;
    EXPECT_GE(e.end_nanos, e.start_nanos);
  }
  EXPECT_TRUE(has_morsel);
  EXPECT_TRUE(has_compile);
  std::string chart = trace.Render(2, 60);
  EXPECT_NE(chart.find("thread 0"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

// --- cost-model micro-calibration -----------------------------------------

TEST(CostModelCalibrationTest, MeasuredSpeedupsAreSaneAndOrdered) {
  const CostModelParams& params = CalibratedCostModelParams();
  // Compiled code must beat the interpreter, optimized at least matches
  // unoptimized, and the clamps bound a mismeasured run.
  EXPECT_GE(params.unopt_speedup, 1.2);
  EXPECT_LE(params.unopt_speedup, 30.0);
  EXPECT_GE(params.opt_speedup, params.unopt_speedup);
  EXPECT_LE(params.opt_speedup, 50.0);
  // Compile-time coefficients are not calibrated: defaults stay.
  CostModelParams defaults;
  EXPECT_EQ(params.unopt_base_seconds, defaults.unopt_base_seconds);
  EXPECT_EQ(params.opt_per_instruction_seconds,
            defaults.opt_per_instruction_seconds);
  // Memoized: a second call returns the identical measurement.
  EXPECT_TRUE(params == CalibratedCostModelParams());
}

}  // namespace
}  // namespace aqe
