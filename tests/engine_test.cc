#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixed_point.h"
#include "engine/query_engine.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace aqe {
namespace {

/// A small synthetic database: one fact table and one dimension table.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    Table* dim = catalog_->CreateTable("dim");
    dim->AddColumn("d_key", DataType::kI64);
    dim->AddColumn("d_group", DataType::kI32);
    for (int64_t k = 0; k < 100; ++k) {
      dim->column(0).AppendI64(k);
      dim->column(1).AppendI32(static_cast<int32_t>(k % 7));
    }
    Table* fact = catalog_->CreateTable("fact");
    fact->AddColumn("f_key", DataType::kI64);
    fact->AddColumn("f_value", DataType::kI64);
    fact->AddColumn("f_flag", DataType::kI32);
    for (int64_t i = 0; i < 50000; ++i) {
      fact->column(0).AppendI64((i * 37) % 120);  // some keys miss the dim
      fact->column(1).AppendI64(i % 1000);
      fact->column(2).AppendI32(static_cast<int32_t>(i % 3));
    }
    engine_ = new QueryEngine(catalog_, /*num_threads=*/2);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
  }

  /// SELECT d_group, sum(f_value), count(*) FROM fact JOIN dim ON f_key =
  /// d_key WHERE f_flag <> 2 GROUP BY d_group ORDER BY d_group.
  static QueryProgram BuildJoinAggQuery() {
    QueryProgram q("join_agg");
    int dim_id = q.DeclareBaseTable("dim");
    int fact_id = q.DeclareBaseTable("fact");
    int ht = q.DeclareJoinTable(/*payload_slots=*/1);
    int agg = q.DeclareAggSet(2, {0, 0});
    (void)q.DeclareOutput(3);

    // queryStart-style C++ step: create the join hash table.
    q.AddStep([ht](QueryContext* ctx) {
      ctx->join_tables[static_cast<size_t>(ht)] =
          std::make_unique<JoinHashTable>(
              ctx->catalog->GetTable("dim")->num_rows(), 1);
    });

    // Pipeline 1: build dim hash table (payload: d_group).
    PipelineSpec build;
    build.name = "build dim";
    build.source_table = dim_id;
    build.scan_columns = {0, 1};  // d_key, d_group
    SinkBuild sink_build;
    sink_build.ht = ht;
    sink_build.key = Slot(0);
    sink_build.payload.push_back(Slot(1));
    build.sink = std::move(sink_build);
    q.AddPipeline(std::move(build));

    // Pipeline 2: scan fact, filter, probe, aggregate by d_group.
    PipelineSpec probe;
    probe.name = "probe fact";
    probe.source_table = fact_id;
    probe.scan_columns = {0, 1, 2};  // f_key, f_value, f_flag
    probe.ops.push_back(OpFilter{Ne(Slot(2), I64(2))});
    OpProbe op_probe;
    op_probe.ht = ht;
    op_probe.key = Slot(0);
    op_probe.payload_slots = 1;  // appends d_group as slot 3
    probe.ops.push_back(std::move(op_probe));
    SinkAgg sink_agg;
    sink_agg.agg = agg;
    sink_agg.key = Slot(3);
    sink_agg.items.push_back({AggKind::kSum, Slot(1), /*checked=*/true});
    sink_agg.items.push_back({AggKind::kCount, nullptr, /*checked=*/false});
    probe.sink = std::move(sink_agg);
    q.AddPipeline(std::move(probe));

    // Final step: merge per-thread aggregates, sort by group.
    q.AddStep([agg](QueryContext* ctx) {
      AggHashTable merged(2, {0, 0});
      ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
          &merged, [](uint32_t slot, int64_t* acc, int64_t v) {
            (void)slot;
            *acc += v;
          });
      merged.ForEach([ctx](int64_t key, void* payload) {
        const auto* p = static_cast<const int64_t*>(payload);
        ctx->result.push_back({key, p[0], p[1]});
      });
      SortRows(&ctx->result, {{0, false, false}});
    });
    return q;
  }

  static Catalog* catalog_;
  static QueryEngine* engine_;
};

Catalog* EngineTest::catalog_ = nullptr;
QueryEngine* EngineTest::engine_ = nullptr;

/// Reference result computed with plain C++.
std::vector<std::vector<int64_t>> ReferenceJoinAgg(const Catalog& catalog) {
  const Table* dim = catalog.GetTable("dim");
  const Table* fact = catalog.GetTable("fact");
  std::unordered_map<int64_t, int32_t> dim_map;
  for (uint64_t r = 0; r < dim->num_rows(); ++r) {
    dim_map[dim->column(0).GetI64(r)] = dim->column(1).GetI32(r);
  }
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  for (uint64_t r = 0; r < fact->num_rows(); ++r) {
    if (fact->column(2).GetI32(r) == 2) continue;
    auto it = dim_map.find(fact->column(0).GetI64(r));
    if (it == dim_map.end()) continue;
    auto& acc = groups[it->second];
    acc.first += fact->column(1).GetI64(r);
    acc.second += 1;
  }
  std::vector<std::vector<int64_t>> rows;
  for (const auto& [group, acc] : groups) {
    rows.push_back({group, acc.first, acc.second});
  }
  return rows;
}

TEST_F(EngineTest, AllEnginesAndModesAgree) {
  auto reference = ReferenceJoinAgg(*catalog_);
  ASSERT_FALSE(reference.empty());

  struct Config {
    EngineKind engine;
    ExecutionStrategy strategy;
    const char* label;
  };
  const Config configs[] = {
      {EngineKind::kVolcano, ExecutionStrategy::kBytecode, "volcano"},
      {EngineKind::kVectorized, ExecutionStrategy::kBytecode, "vectorized"},
      {EngineKind::kNaiveIr, ExecutionStrategy::kBytecode, "naive-ir"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode, "vm"},
      {EngineKind::kCompiled, ExecutionStrategy::kUnoptimized, "jit-unopt"},
      {EngineKind::kCompiled, ExecutionStrategy::kOptimized, "jit-opt"},
      {EngineKind::kCompiled, ExecutionStrategy::kAdaptive, "adaptive"},
  };
  for (const Config& config : configs) {
    QueryProgram q = BuildJoinAggQuery();
    QueryRunOptions options;
    options.engine = config.engine;
    options.strategy = config.strategy;
    QueryRunResult result = engine_->Run(q, options);
    EXPECT_EQ(result.rows, reference) << config.label;
  }
}

TEST_F(EngineTest, UnfusedVmAlsoAgrees) {
  auto reference = ReferenceJoinAgg(*catalog_);
  QueryProgram q = BuildJoinAggQuery();
  QueryRunOptions options;
  options.engine = EngineKind::kCompiled;
  options.strategy = ExecutionStrategy::kBytecode;
  options.translator.fuse_macro_ops = false;
  EXPECT_EQ(engine_->Run(q, options).rows, reference);
}

TEST_F(EngineTest, ReportsInstrumentation) {
  QueryProgram q = BuildJoinAggQuery();
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  // This test asserts *cold* costs (translation happened, time recorded);
  // the shared engine's artifact cache would legitimately zero them.
  options.use_artifact_cache = false;
  QueryRunResult result = engine_->Run(q, options);
  ASSERT_EQ(result.pipelines.size(), 2u);
  EXPECT_EQ(result.pipelines[0].name, "build dim");
  EXPECT_EQ(result.pipelines[1].name, "probe fact");
  EXPECT_EQ(result.pipelines[0].tuples, 100u);
  EXPECT_EQ(result.pipelines[1].tuples, 50000u);
  for (const auto& p : result.pipelines) {
    EXPECT_GT(p.instructions, 10u);
    EXPECT_GT(p.translate_millis, 0);
    EXPECT_GT(p.register_file_bytes, 16u);
    EXPECT_EQ(p.final_mode, ExecMode::kBytecode);
  }
  EXPECT_GT(result.codegen_millis_total, 0);
}

TEST_F(EngineTest, StaticModesReportCompileTimes) {
  QueryProgram q = BuildJoinAggQuery();
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kOptimized;
  // Cold costs again: bypass the shared engine's artifact cache.
  options.use_artifact_cache = false;
  QueryRunResult result = engine_->Run(q, options);
  EXPECT_GT(result.compile_millis_total, 0);
  for (const auto& p : result.pipelines) {
    EXPECT_EQ(p.final_mode, ExecMode::kOptimized);
    ASSERT_EQ(p.compiles.size(), 1u);
    EXPECT_EQ(p.compiles[0].first, ExecMode::kOptimized);
    // Satellite reporting fix: execution time excludes the blocking
    // up-front compile, so exec_only < exec and the totals split cleanly.
    EXPECT_LT(p.exec_only_seconds, p.exec_seconds);
  }
  EXPECT_GT(result.exec_seconds_total, 0);
  EXPECT_LT(result.exec_seconds_total,
            result.total_seconds - result.compile_millis_total / 1e3 + 1e-9);
}

TEST_F(EngineTest, MeasureCompileCosts) {
  QueryProgram q = BuildJoinAggQuery();
  auto costs = engine_->MeasureCompileCosts(q);
  ASSERT_EQ(costs.size(), 2u);
  for (const auto& c : costs) {
    EXPECT_GT(c.instructions, 0u);
    EXPECT_GT(c.bytecode_millis, 0);
    EXPECT_GT(c.unopt_millis, 0);
    EXPECT_GT(c.opt_millis, 0);
    // The latency ordering the whole paper is about:
    EXPECT_LT(c.bytecode_millis, c.unopt_millis);
    EXPECT_LT(c.unopt_millis, c.opt_millis);
  }
}

TEST_F(EngineTest, ExprEvalMatrix) {
  // EvalExpr agrees with manual computation on a few composite expressions.
  std::vector<int64_t> slots = {10, -3, 7};
  auto e1 = Add(Mul(Slot(0), I64(5)), Slot(1));
  EXPECT_EQ(EvalExpr(*e1, slots.data()), 47);
  auto e2 = And(Lt(Slot(1), I64(0)), Ge(Slot(2), I64(7)));
  EXPECT_EQ(EvalExpr(*e2, slots.data()), 1);
  auto e3 = Not(Eq(Slot(0), I64(10)));
  EXPECT_EQ(EvalExpr(*e3, slots.data()), 0);
  auto cloned = CloneExpr(*e2);
  EXPECT_EQ(EvalExpr(*cloned, slots.data()), 1);
  EXPECT_EQ(ExprSize(*e2), 7);
}

}  // namespace
}  // namespace aqe
