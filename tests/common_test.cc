#include <gtest/gtest.h>

#include <set>

#include "common/fixed_point.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace aqe {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::Error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RandomTest, NextBelowInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RandomTest, NextBelowCoversAllValues) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextRangeInclusive) {
  Random rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextBoolProbability) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(FixedPointTest, RoundTrip) {
  EXPECT_EQ(DecimalFromDouble(12.34), 1234);
  EXPECT_DOUBLE_EQ(DecimalToDouble(1234), 12.34);
  EXPECT_EQ(DecimalFromDouble(-0.05), -5);
}

TEST(FixedPointTest, ToString) {
  EXPECT_EQ(DecimalToString(1234), "12.34");
  EXPECT_EQ(DecimalToString(-1234), "-12.34");
  EXPECT_EQ(DecimalToString(-5), "-0.05");
  EXPECT_EQ(DecimalToString(100), "1.00");
  EXPECT_EQ(DecimalToString(7), "0.07");
}

TEST(FixedPointTest, Mul) {
  // 2.00 * 3.50 == 7.00
  EXPECT_EQ(DecimalMul(200, 350), 700);
  // 0.10 * 0.10 == 0.01
  EXPECT_EQ(DecimalMul(10, 10), 1);
  // negative
  EXPECT_EQ(DecimalMul(-200, 350), -700);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  ::testing::Test::RecordProperty("sink", x);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms number >= s number
}

TEST(TimerTest, MonotonicNanosAdvances) {
  int64_t a = MonotonicNanos();
  int64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

TEST(TimerTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0.0000123), "12.3us");
  EXPECT_EQ(FormatDuration(0.0123), "12.30ms");
  EXPECT_EQ(FormatDuration(1.5), "1.50s");
}

}  // namespace
}  // namespace aqe
