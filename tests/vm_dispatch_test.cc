// Differential tests of the two interpreter dispatch engines (switch vs
// direct-threaded) and the compare-and-branch superinstruction peephole:
// the same BcProgram must produce bit-identical results under every engine
// and fusion setting, including at numeric boundary values.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>

#include "ir/ir_module.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

RuntimeRegistry& TestRegistry() {
  static RuntimeRegistry* registry = [] {
    auto* r = new RuntimeRegistry();
    RegisterBuiltinRuntime(r);
    return r;
  }();
  return *registry;
}

using IrGenerator = std::function<void(IrModule*)>;

/// Declares `i64 f(i64, i64, ptr)` and positions the builder in its entry.
llvm::Function* MakeF(IrModule* mod, llvm::IRBuilder<>* b) {
  auto& ctx = mod->context();
  auto* fty = llvm::FunctionType::get(
      llvm::Type::getInt64Ty(ctx),
      {llvm::Type::getInt64Ty(ctx), llvm::Type::getInt64Ty(ctx),
       llvm::Type::getInt64PtrTy(ctx)},
      false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, "f",
                                    &mod->module());
  b->SetInsertPoint(llvm::BasicBlock::Create(ctx, "entry", fn));
  return fn;
}

/// Runs `gen`'s function under both dispatch engines for each translator
/// option set and checks that every (engine, options) combination agrees,
/// including the side-effect buffer.
void ExpectDispatchEnginesAgree(const IrGenerator& gen, uint64_t a,
                                uint64_t b) {
  std::vector<TranslatorOptions> option_sets;
  TranslatorOptions defaults;
  option_sets.push_back(defaults);
  TranslatorOptions no_load_fusion;
  no_load_fusion.fuse_load_cmp_branches = false;
  option_sets.push_back(no_load_fusion);
  TranslatorOptions no_imm_fusion;
  no_imm_fusion.fuse_imm_cmp_branches = false;
  option_sets.push_back(no_imm_fusion);
  TranslatorOptions no_chains;
  no_chains.fuse_branch_chains = false;
  option_sets.push_back(no_chains);
  TranslatorOptions no_cmp_fusion;
  no_cmp_fusion.fuse_cmp_branches = false;
  option_sets.push_back(no_cmp_fusion);
  TranslatorOptions no_fusion_at_all;
  no_fusion_at_all.fuse_macro_ops = false;
  no_fusion_at_all.fuse_cmp_branches = false;
  option_sets.push_back(no_fusion_at_all);

  bool have_reference = false;
  uint64_t ref_value = 0;
  std::vector<int64_t> ref_buf;
  for (size_t opt = 0; opt < option_sets.size(); ++opt) {
    IrModule mod("m");
    gen(&mod);
    ASSERT_EQ(mod.Verify(), "");
    BcProgram program = TranslateToBytecode(*mod.module().getFunction("f"),
                                            TestRegistry(), option_sets[opt]);
    for (VmDispatch dispatch : {VmDispatch::kSwitch, VmDispatch::kThreaded}) {
      std::vector<int64_t> buf(64);
      for (int i = 0; i < 64; ++i) buf[static_cast<size_t>(i)] = i * 7 - 100;
      uint64_t args[3] = {a, b, reinterpret_cast<uint64_t>(buf.data())};
      uint64_t value = VmExecute(program, args, 3, dispatch);
      if (!have_reference) {
        have_reference = true;
        ref_value = value;
        ref_buf = buf;
        continue;
      }
      EXPECT_EQ(value, ref_value)
          << "options[" << opt << "] " << VmDispatchName(dispatch);
      EXPECT_EQ(buf, ref_buf)
          << "options[" << opt << "] " << VmDispatchName(dispatch) << " buffer";
    }
  }
}

TEST(VmDispatchTest, ThreadedEngineIsCompiledIn) {
  // The bakery images build with GCC/Clang; if this starts failing the
  // dispatch benchmark silently degenerates to switch-vs-switch.
  EXPECT_TRUE(VmThreadedDispatchAvailable());
  EXPECT_NE(VmResolveDispatch(VmDispatch::kDefault), VmDispatch::kDefault);
}

// --- compare-and-branch superinstructions ------------------------------------

/// f = (a <pred> b) ? 111 : 222 via explicit branching (not select), so the
/// icmp + condbr pair is fusable.
IrGenerator CmpBranchGen(llvm::CmpInst::Predicate pred, bool use_i32) {
  return [pred, use_i32](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    llvm::Value* lhs = fn->getArg(0);
    llvm::Value* rhs = fn->getArg(1);
    if (use_i32) {
      lhs = b.CreateTrunc(lhs, b.getInt32Ty());
      rhs = b.CreateTrunc(rhs, b.getInt32Ty());
    }
    b.CreateCondBr(b.CreateICmp(pred, lhs, rhs), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
}

TEST(VmDispatchTest, FusedIcmpBranchAllPredicatesAtBoundaries) {
  const llvm::CmpInst::Predicate predicates[] = {
      llvm::CmpInst::ICMP_EQ,  llvm::CmpInst::ICMP_NE,
      llvm::CmpInst::ICMP_SLT, llvm::CmpInst::ICMP_SLE,
      llvm::CmpInst::ICMP_SGT, llvm::CmpInst::ICMP_SGE,
      llvm::CmpInst::ICMP_ULT, llvm::CmpInst::ICMP_ULE,
      llvm::CmpInst::ICMP_UGT, llvm::CmpInst::ICMP_UGE,
  };
  const uint64_t boundary[] = {
      0,
      1,
      static_cast<uint64_t>(-1),
      static_cast<uint64_t>(std::numeric_limits<int32_t>::min()),
      static_cast<uint64_t>(std::numeric_limits<int32_t>::max()),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::min()),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()),
      0x80000000ull,  // i32 sign boundary as unsigned
  };
  for (llvm::CmpInst::Predicate pred : predicates) {
    for (bool use_i32 : {false, true}) {
      IrGenerator gen = CmpBranchGen(pred, use_i32);
      for (uint64_t x : boundary) {
        for (uint64_t y : boundary) {
          ExpectDispatchEnginesAgree(gen, x, y);
          if (::testing::Test::HasFailure()) {
            FAIL() << "pred=" << pred << " i32=" << use_i32 << " x=" << x
                   << " y=" << y;
          }
        }
      }
    }
  }
}

TEST(VmDispatchTest, FusedFcmpBranchWithNaN) {
  for (llvm::CmpInst::Predicate pred :
       {llvm::CmpInst::FCMP_OLT, llvm::CmpInst::FCMP_OGT}) {
    IrGenerator gen = [pred](IrModule* mod) {
      llvm::IRBuilder<> b(mod->context());
      llvm::Function* fn = MakeF(mod, &b);
      auto& ctx = mod->context();
      auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
      auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
      auto* x = b.CreateBitCast(fn->getArg(0), b.getDoubleTy());
      auto* y = b.CreateBitCast(fn->getArg(1), b.getDoubleTy());
      b.CreateCondBr(b.CreateFCmp(pred, x, y), then_bb, else_bb);
      b.SetInsertPoint(then_bb);
      b.CreateRet(b.getInt64(111));
      b.SetInsertPoint(else_bb);
      b.CreateRet(b.getInt64(222));
    };
    auto bits = [](double d) {
      uint64_t u;
      std::memcpy(&u, &d, sizeof(u));
      return u;
    };
    const double values[] = {0.0, -0.0, 1.5, -1.5,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    for (double x : values) {
      for (double y : values) {
        ExpectDispatchEnginesAgree(gen, bits(x), bits(y));
      }
    }
  }
}

TEST(VmDispatchTest, CmpBranchFusionEmitsSuperinstruction) {
  IrGenerator gen = CmpBranchGen(llvm::CmpInst::ICMP_SLT, false);
  IrModule mod("m");
  gen(&mod);
  BcProgram fused =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(fused.fused_cmp_branches, 1u);
  EXPECT_NE(fused.Disassemble().find("br_slt_i64"), std::string::npos);
  EXPECT_EQ(fused.Disassemble().find("icmp_slt_i64"), std::string::npos);

  TranslatorOptions no_fuse;
  no_fuse.fuse_cmp_branches = false;
  BcProgram unfused = TranslateToBytecode(*mod.module().getFunction("f"),
                                          TestRegistry(), no_fuse);
  EXPECT_EQ(unfused.fused_cmp_branches, 0u);
  EXPECT_NE(unfused.Disassemble().find("icmp_slt_i64"), std::string::npos);
  EXPECT_NE(unfused.Disassemble().find("condbr"), std::string::npos);
  // Fusion removes one instruction (the icmp).
  EXPECT_EQ(fused.code.size() + 1, unfused.code.size());
}

/// f = (a <pred> K) ? 111 : 222 with the constant on the LHS or RHS, so the
/// peephole's immediate form (and its operand mirroring) is exercised.
IrGenerator CmpImmBranchGen(llvm::CmpInst::Predicate pred, bool use_i32,
                            uint64_t constant, bool constant_lhs) {
  return [pred, use_i32, constant, constant_lhs](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    llvm::Value* x = fn->getArg(0);
    llvm::Value* k;
    if (use_i32) {
      x = b.CreateTrunc(x, b.getInt32Ty());
      k = b.getInt32(static_cast<uint32_t>(constant));
    } else {
      k = b.getInt64(constant);
    }
    llvm::Value* cmp = constant_lhs ? b.CreateICmp(pred, k, x)
                                    : b.CreateICmp(pred, x, k);
    b.CreateCondBr(cmp, then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
}

TEST(VmDispatchTest, ImmCmpBranchAllPredicatesBothEnginesAtBoundaries) {
  const llvm::CmpInst::Predicate predicates[] = {
      llvm::CmpInst::ICMP_EQ,  llvm::CmpInst::ICMP_NE,
      llvm::CmpInst::ICMP_SLT, llvm::CmpInst::ICMP_SLE,
      llvm::CmpInst::ICMP_SGT, llvm::CmpInst::ICMP_SGE,
      llvm::CmpInst::ICMP_ULT, llvm::CmpInst::ICMP_ULE,
      llvm::CmpInst::ICMP_UGT, llvm::CmpInst::ICMP_UGE,
  };
  const uint64_t constants[] = {
      2,  // plain
      static_cast<uint64_t>(-7),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::min()),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()),
      0x80000000ull,  // i32 sign boundary as unsigned
  };
  const uint64_t args[] = {0, 1, static_cast<uint64_t>(-7), 2, 3,
                           static_cast<uint64_t>(-1), 0x80000000ull};
  for (llvm::CmpInst::Predicate pred : predicates) {
    for (bool use_i32 : {false, true}) {
      for (bool constant_lhs : {false, true}) {
        for (uint64_t k : constants) {
          IrGenerator gen = CmpImmBranchGen(pred, use_i32, k, constant_lhs);
          for (uint64_t x : args) {
            ExpectDispatchEnginesAgree(gen, x, 0);
            if (::testing::Test::HasFailure()) {
              FAIL() << "pred=" << pred << " i32=" << use_i32
                     << " const_lhs=" << constant_lhs << " k=" << k
                     << " x=" << x;
            }
          }
        }
      }
    }
  }
}

TEST(VmDispatchTest, ImmCmpBranchEmitsImmSuperinstruction) {
  IrGenerator gen =
      CmpImmBranchGen(llvm::CmpInst::ICMP_SLT, false, 42, /*lhs=*/false);
  IrModule mod("m");
  gen(&mod);
  BcProgram fused =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(fused.fused_cmp_branches, 1u);
  EXPECT_EQ(fused.fused_cmp_branch_imms, 1u);
  EXPECT_NE(fused.Disassemble().find("br_slt_i64_imm"), std::string::npos);
  // The compared constant lives in the literal pool, not the register file.
  ASSERT_EQ(fused.literal_pool.size(), 1u);
  EXPECT_EQ(fused.literal_pool[0], 42u);

  // Without the imm option the same compare still fuses, through a
  // constant-pool register — one more pool entry (and its entry load).
  TranslatorOptions no_imm;
  no_imm.fuse_imm_cmp_branches = false;
  BcProgram reg_form = TranslateToBytecode(*mod.module().getFunction("f"),
                                           TestRegistry(), no_imm);
  EXPECT_EQ(reg_form.fused_cmp_branches, 1u);
  EXPECT_EQ(reg_form.fused_cmp_branch_imms, 0u);
  EXPECT_EQ(reg_form.Disassemble().find("_imm"), std::string::npos);
  EXPECT_TRUE(reg_form.literal_pool.empty());
  EXPECT_EQ(reg_form.constant_pool.size(), fused.constant_pool.size() + 1);
}

TEST(VmDispatchTest, ImmCmpBranchMirrorsConstantLhs) {
  // 42 < x  must become  x > 42 (br_sgt_i64_imm).
  IrGenerator gen =
      CmpImmBranchGen(llvm::CmpInst::ICMP_SLT, false, 42, /*lhs=*/true);
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_cmp_branch_imms, 1u);
  EXPECT_NE(program.Disassemble().find("br_sgt_i64_imm"), std::string::npos);
}

TEST(VmDispatchTest, ImmFcmpBranchWithNaN) {
  for (llvm::CmpInst::Predicate pred :
       {llvm::CmpInst::FCMP_OLT, llvm::CmpInst::FCMP_OGT}) {
    for (double k : {1.5, -3.25}) {
      IrGenerator gen = [pred, k](IrModule* mod) {
        llvm::IRBuilder<> b(mod->context());
        llvm::Function* fn = MakeF(mod, &b);
        auto& ctx = mod->context();
        auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
        auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
        auto* x = b.CreateBitCast(fn->getArg(0), b.getDoubleTy());
        b.CreateCondBr(b.CreateFCmp(pred, x, llvm::ConstantFP::get(
                                                 b.getDoubleTy(), k)),
                       then_bb, else_bb);
        b.SetInsertPoint(then_bb);
        b.CreateRet(b.getInt64(111));
        b.SetInsertPoint(else_bb);
        b.CreateRet(b.getInt64(222));
      };
      {
        IrModule mod("m");
        gen(&mod);
        BcProgram program = TranslateToBytecode(
            *mod.module().getFunction("f"), TestRegistry(), {});
        EXPECT_EQ(program.fused_cmp_branch_imms, 1u);
      }
      auto bits = [](double d) {
        uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return u;
      };
      const double values[] = {0.0, -0.0, 1.5, -1.5, -3.25,
                               std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()};
      for (double x : values) ExpectDispatchEnginesAgree(gen, bits(x), 0);
    }
  }
}

TEST(VmDispatchTest, ImmCmpBranchSkipsReservedZeroAndOne) {
  // Compares against 0/1 keep the register form: the reserved slots already
  // hold those values, so an immediate would only waste a pool entry.
  for (uint64_t k : {uint64_t{0}, uint64_t{1}}) {
    IrGenerator gen =
        CmpImmBranchGen(llvm::CmpInst::ICMP_SGT, false, k, /*lhs=*/false);
    IrModule mod("m");
    gen(&mod);
    BcProgram program = TranslateToBytecode(*mod.module().getFunction("f"),
                                            TestRegistry(), {});
    EXPECT_EQ(program.fused_cmp_branches, 1u);
    EXPECT_EQ(program.fused_cmp_branch_imms, 0u);
    EXPECT_TRUE(program.literal_pool.empty());
    ExpectDispatchEnginesAgree(gen, 0, 0);
    ExpectDispatchEnginesAgree(gen, 5, 0);
    ExpectDispatchEnginesAgree(gen, static_cast<uint64_t>(-5), 0);
  }
}

TEST(VmDispatchTest, MultiUseCompareIsNotFused) {
  // The i1 result is used by both the condbr and a zext -> no fusion.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    auto* cmp = b.CreateICmpSLT(fn->getArg(0), fn->getArg(1));
    auto* bit = b.CreateZExt(cmp, b.getInt64Ty());
    b.CreateCondBr(cmp, then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.CreateAdd(bit, b.getInt64(100)));
    b.SetInsertPoint(else_bb);
    b.CreateRet(bit);
  };
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_cmp_branches, 0u);
  ExpectDispatchEnginesAgree(gen, 3, 9);
  ExpectDispatchEnginesAgree(gen, 9, 3);
}

// --- short-circuit branch chains ---------------------------------------------

/// A scan-filter loop whose filter is one conjunction feeding a single
/// condbr — the and-tree shape every compiled multi-term predicate has, and
/// the branch-chain splitting target. Sums buf[i] over rows passing
/// `buf[i] > a && buf[i] < b && <third term>`. The first compare reads its
/// own single-use load (so its chain element can fold it, br_load_*); the
/// second load feeds the remaining terms and the sum. With
/// `unfusable_leaf` the third term is an fcmp OGE, which has no fused
/// branch form and must chain through a plain condbr.
IrGenerator ChainLoopGen(bool unfusable_leaf) {
  return [unfusable_leaf](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* i64 = llvm::Type::getInt64Ty(ctx);
    auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
    auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
    auto* keep = llvm::BasicBlock::Create(ctx, "keep", fn);
    auto* latch = llvm::BasicBlock::Create(ctx, "latch", fn);
    auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
    auto* entry = b.GetInsertBlock();
    b.CreateBr(head);
    b.SetInsertPoint(head);
    auto* i = b.CreatePHI(i64, 2, "i");
    auto* sum = b.CreatePHI(i64, 2, "sum");
    i->addIncoming(b.getInt64(0), entry);
    sum->addIncoming(b.getInt64(0), entry);
    b.CreateCondBr(b.CreateICmpULT(i, b.getInt64(64)), body, exit);
    b.SetInsertPoint(body);
    auto* v1 = b.CreateLoad(i64, b.CreateGEP(i64, fn->getArg(2), i));
    auto* v2 = b.CreateLoad(i64, b.CreateGEP(i64, fn->getArg(2), i));
    auto* c1 = b.CreateICmpSGT(v1, fn->getArg(0));
    auto* c2 = b.CreateICmpSLT(v2, fn->getArg(1));
    llvm::Value* c3;
    if (unfusable_leaf) {
      auto* vd = b.CreateSIToFP(v2, b.getDoubleTy());
      c3 = b.CreateFCmpOGE(vd, llvm::ConstantFP::get(b.getDoubleTy(), -60.0));
    } else {
      c3 = b.CreateICmpNE(v2, b.getInt64(40));
    }
    b.CreateCondBr(b.CreateAnd(b.CreateAnd(c1, c2), c3), keep, latch);
    b.SetInsertPoint(keep);
    auto* sum2 = b.CreateAdd(sum, v2);
    b.CreateBr(latch);
    b.SetInsertPoint(latch);
    auto* sum3 = b.CreatePHI(i64, 2, "sum3");
    sum3->addIncoming(sum, body);
    sum3->addIncoming(sum2, keep);
    auto* next = b.CreateAdd(i, b.getInt64(1));
    i->addIncoming(next, latch);
    sum->addIncoming(sum3, latch);
    b.CreateBr(head);
    b.SetInsertPoint(exit);
    b.CreateRet(sum);
  };
}

TEST(VmDispatchTest, BranchChainSplitsConjunction) {
  IrGenerator gen = ChainLoopGen(/*unfusable_leaf=*/false);
  IrModule mod("m");
  gen(&mod);
  BcProgram chained =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  // Loop bound + all three conjunction leaves fuse; the first leaf's
  // single-use load folds into its chain element, and the bound (ult 64)
  // and ne-40 leaves take the immediate form. No condbr survives.
  EXPECT_EQ(chained.fused_cmp_branches, 4u);
  EXPECT_EQ(chained.fused_load_cmp_branches, 1u);
  EXPECT_EQ(chained.fused_cmp_branch_imms, 2u);
  EXPECT_EQ(chained.Disassemble().find("condbr"), std::string::npos);

  TranslatorOptions no_chains;
  no_chains.fuse_branch_chains = false;
  BcProgram flat = TranslateToBytecode(*mod.module().getFunction("f"),
                                       TestRegistry(), no_chains);
  // Without chains the conjunction materializes into one condbr and only
  // the loop bound fuses.
  EXPECT_EQ(flat.fused_cmp_branches, 1u);
  EXPECT_EQ(flat.fused_load_cmp_branches, 0u);
  EXPECT_NE(flat.Disassemble().find("condbr"), std::string::npos);
}

TEST(VmDispatchTest, BranchChainKeepsUnfusableLeafAsCondbr) {
  IrGenerator gen = ChainLoopGen(/*unfusable_leaf=*/true);
  IrModule mod("m");
  gen(&mod);
  BcProgram chained =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  // The fcmp-OGE leaf has no fused branch form: it computes in the body
  // and chains through a plain condbr, while the loop bound and the two
  // icmp leaves still fuse.
  EXPECT_EQ(chained.fused_cmp_branches, 3u);
  EXPECT_EQ(chained.fused_load_cmp_branches, 1u);
  EXPECT_NE(chained.Disassemble().find("condbr"), std::string::npos);
}

TEST(VmDispatchTest, BranchChainAllEnginesAndOptionSetsAgree) {
  // Harness buf holds i*7 - 100 for i in [0, 64): range [-100, 341],
  // containing the ne-40 leaf's constant (i == 20). Thresholds picked so
  // each term is the short-circuit decider for some rows: always-pass,
  // always-fail, and boundary-straddling pairs.
  const int64_t pairs[][2] = {
      {-1000, 1000},  // every row passes the range terms
      {341, 1000},    // first term fails on every row
      {-1000, -99},   // second term fails on almost every row
      {0, 200},       // mixed
      {39, 41},       // isolates the ne-40 leaf
  };
  for (bool unfusable_leaf : {false, true}) {
    IrGenerator gen = ChainLoopGen(unfusable_leaf);
    for (const auto& p : pairs) {
      ExpectDispatchEnginesAgree(gen, static_cast<uint64_t>(p[0]),
                                 static_cast<uint64_t>(p[1]));
      if (::testing::Test::HasFailure()) {
        FAIL() << "unfusable_leaf=" << unfusable_leaf << " a=" << p[0]
               << " b=" << p[1];
      }
    }
  }
}

// --- load-compare-and-branch superinstructions -------------------------------

/// Stores b into buf[a & 63] (as i32 or i64), loads it back through a
/// GEP+load pair, and branches on `loaded <pred> a` — the exact shape the
/// br_load_* peephole fuses. `load_on_lhs`=false puts the load on the
/// compare's RHS to exercise the mirrored encoding.
IrGenerator LoadCmpBranchGen(llvm::CmpInst::Predicate pred, bool use_i32,
                             bool load_on_lhs) {
  return [pred, use_i32, load_on_lhs](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    llvm::Type* elem_ty = use_i32 ? b.getInt32Ty() : b.getInt64Ty();
    auto* idx_s = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    llvm::Value* stored = fn->getArg(1);
    if (use_i32) stored = b.CreateTrunc(stored, b.getInt32Ty());
    b.CreateStore(stored, b.CreateGEP(elem_ty, fn->getArg(2), idx_s));
    auto* idx_l = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* loaded =
        b.CreateLoad(elem_ty, b.CreateGEP(elem_ty, fn->getArg(2), idx_l));
    llvm::Value* other = fn->getArg(0);
    if (use_i32) other = b.CreateTrunc(other, b.getInt32Ty());
    llvm::Value* cmp = load_on_lhs ? b.CreateICmp(pred, loaded, other)
                                   : b.CreateICmp(pred, other, loaded);
    b.CreateCondBr(cmp, then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
}

TEST(VmDispatchTest, LoadCmpBranchAllPredicatesBothEnginesAtBoundaries) {
  const llvm::CmpInst::Predicate predicates[] = {
      llvm::CmpInst::ICMP_EQ,  llvm::CmpInst::ICMP_NE,
      llvm::CmpInst::ICMP_SLT, llvm::CmpInst::ICMP_SLE,
      llvm::CmpInst::ICMP_SGT, llvm::CmpInst::ICMP_SGE,
      llvm::CmpInst::ICMP_ULT, llvm::CmpInst::ICMP_ULE,
      llvm::CmpInst::ICMP_UGT, llvm::CmpInst::ICMP_UGE,
  };
  const uint64_t boundary[] = {
      0,
      1,
      63,
      static_cast<uint64_t>(-1),
      static_cast<uint64_t>(std::numeric_limits<int32_t>::min()),
      static_cast<uint64_t>(std::numeric_limits<int32_t>::max()),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::min()),
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()),
      0x80000000ull,  // i32 sign boundary as unsigned
  };
  for (llvm::CmpInst::Predicate pred : predicates) {
    for (bool use_i32 : {false, true}) {
      for (bool load_on_lhs : {true, false}) {
        IrGenerator gen = LoadCmpBranchGen(pred, use_i32, load_on_lhs);
        for (uint64_t x : boundary) {
          for (uint64_t y : boundary) {
            ExpectDispatchEnginesAgree(gen, x, y);
            if (::testing::Test::HasFailure()) {
              FAIL() << "pred=" << pred << " i32=" << use_i32
                     << " load_lhs=" << load_on_lhs << " x=" << x << " y=" << y;
            }
          }
        }
      }
    }
  }
}

TEST(VmDispatchTest, LoadCmpBranchEmitsSuperinstruction) {
  IrGenerator gen =
      LoadCmpBranchGen(llvm::CmpInst::ICMP_SGT, false, /*load_on_lhs=*/true);
  IrModule mod("m");
  gen(&mod);
  BcProgram fused =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(fused.fused_cmp_branches, 1u);
  EXPECT_EQ(fused.fused_load_cmp_branches, 1u);
  EXPECT_NE(fused.Disassemble().find("br_load_sgt_i64"), std::string::npos);
  EXPECT_EQ(fused.Disassemble().find("load_idx_i64"), std::string::npos);

  // With the tier disabled the same kernel keeps the PR-4 shape: a fused
  // indexed load followed by the compare-and-branch superinstruction.
  TranslatorOptions no_load;
  no_load.fuse_load_cmp_branches = false;
  BcProgram two_op = TranslateToBytecode(*mod.module().getFunction("f"),
                                         TestRegistry(), no_load);
  EXPECT_EQ(two_op.fused_cmp_branches, 1u);
  EXPECT_EQ(two_op.fused_load_cmp_branches, 0u);
  EXPECT_NE(two_op.Disassemble().find("load_idx_i64"), std::string::npos);
  EXPECT_NE(two_op.Disassemble().find("br_sgt_i64"), std::string::npos);
  // The tier folds the load away: one fewer instruction.
  EXPECT_EQ(fused.code.size() + 1, two_op.code.size());
}

TEST(VmDispatchTest, LoadCmpBranchMirrorsLoadOnRhs) {
  // a < buf[i]  must become  buf[i] > a (br_load_sgt_i64).
  IrGenerator gen =
      LoadCmpBranchGen(llvm::CmpInst::ICMP_SLT, false, /*load_on_lhs=*/false);
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_load_cmp_branches, 1u);
  EXPECT_NE(program.Disassemble().find("br_load_sgt_i64"), std::string::npos);
}

/// Loads buf[a & 63] and branches on `loaded <pred> K`: the imm form of the
/// load-compare-and-branch tier.
IrGenerator LoadCmpImmBranchGen(llvm::CmpInst::Predicate pred, bool use_i32,
                                uint64_t constant) {
  return [pred, use_i32, constant](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    llvm::Type* elem_ty = use_i32 ? b.getInt32Ty() : b.getInt64Ty();
    auto* idx = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* loaded =
        b.CreateLoad(elem_ty, b.CreateGEP(elem_ty, fn->getArg(2), idx));
    llvm::Value* k = use_i32
                         ? static_cast<llvm::Value*>(
                               b.getInt32(static_cast<uint32_t>(constant)))
                         : b.getInt64(constant);
    b.CreateCondBr(b.CreateICmp(pred, loaded, k), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
}

TEST(VmDispatchTest, LoadCmpImmBranchEmitsImmForm) {
  IrGenerator gen = LoadCmpImmBranchGen(llvm::CmpInst::ICMP_SLT, false, 42);
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_load_cmp_branches, 1u);
  EXPECT_EQ(program.fused_cmp_branch_imms, 1u);
  EXPECT_NE(program.Disassemble().find("br_load_slt_i64_imm"),
            std::string::npos);
  ASSERT_EQ(program.literal_pool.size(), 1u);
  EXPECT_EQ(program.literal_pool[0], 42u);
  for (uint64_t x : {uint64_t{0}, uint64_t{7}, uint64_t{45}}) {
    ExpectDispatchEnginesAgree(gen, x, 0);
  }
}

TEST(VmDispatchTest, LoadCmpImmBranchSkipsReservedZeroAndOne) {
  // Constants 0/1 keep the reg form through the reserved register slots.
  for (uint64_t k : {uint64_t{0}, uint64_t{1}}) {
    IrGenerator gen = LoadCmpImmBranchGen(llvm::CmpInst::ICMP_SGT, true, k);
    IrModule mod("m");
    gen(&mod);
    BcProgram program =
        TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
    EXPECT_EQ(program.fused_load_cmp_branches, 1u);
    EXPECT_EQ(program.fused_cmp_branch_imms, 0u);
    EXPECT_TRUE(program.literal_pool.empty());
    EXPECT_NE(program.Disassemble().find("br_load_sgt_i32"),
              std::string::npos);
    ExpectDispatchEnginesAgree(gen, 3, 0);
  }
}

TEST(VmDispatchTest, LoadCmpBranchNotFusedAcrossStore) {
  // A store between the load and the terminator blocks the tier (the fused
  // op would move the read past the write); the compare still fuses.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    auto* i64 = b.getInt64Ty();
    auto* idx = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* loaded = b.CreateLoad(i64, b.CreateGEP(i64, fn->getArg(2), idx));
    auto* idx2 = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    b.CreateStore(fn->getArg(1), b.CreateGEP(i64, fn->getArg(2), idx2));
    b.CreateCondBr(b.CreateICmpSGT(loaded, fn->getArg(0)), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_load_cmp_branches, 0u);
  EXPECT_EQ(program.fused_cmp_branches, 1u);
  ExpectDispatchEnginesAgree(gen, 5, 99);
  ExpectDispatchEnginesAgree(gen, static_cast<uint64_t>(-3), 12);
}

TEST(VmDispatchTest, LoadCmpBranchNotFusedForMultiUseLoad) {
  // The loaded value is also returned, so the load keeps its register.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    auto* i64 = b.getInt64Ty();
    auto* idx = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* loaded = b.CreateLoad(i64, b.CreateGEP(i64, fn->getArg(2), idx));
    b.CreateCondBr(b.CreateICmpSGT(loaded, fn->getArg(1)), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(loaded);
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_load_cmp_branches, 0u);
  EXPECT_EQ(program.fused_cmp_branches, 1u);
  ExpectDispatchEnginesAgree(gen, 4, 0);
  ExpectDispatchEnginesAgree(gen, 4, 10000);
}

TEST(VmDispatchTest, LoadCmpBranchRequiresMatchingScale) {
  // GEP element type != loaded type (i8-scaled address of an i32 load): the
  // implied-scale encoding cannot express it, so only the compare fuses.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* then_bb = llvm::BasicBlock::Create(ctx, "t", fn);
    auto* else_bb = llvm::BasicBlock::Create(ctx, "e", fn);
    auto* idx = b.CreateAnd(fn->getArg(0), b.getInt64(63));
    auto* loaded = b.CreateLoad(
        b.getInt32Ty(), b.CreateGEP(b.getInt8Ty(), fn->getArg(2), idx));
    auto* rhs = b.CreateTrunc(fn->getArg(1), b.getInt32Ty());
    b.CreateCondBr(b.CreateICmpEQ(loaded, rhs), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.CreateRet(b.getInt64(111));
    b.SetInsertPoint(else_bb);
    b.CreateRet(b.getInt64(222));
  };
  IrModule mod("m");
  gen(&mod);
  BcProgram program =
      TranslateToBytecode(*mod.module().getFunction("f"), TestRegistry(), {});
  EXPECT_EQ(program.fused_load_cmp_branches, 0u);
  EXPECT_EQ(program.fused_cmp_branches, 1u);
  ExpectDispatchEnginesAgree(gen, 8, 77);
}

// --- overflow macro ops under both engines -----------------------------------

TEST(VmDispatchTest, OverflowOpsFusedAndUnfusedAtBoundaries) {
  for (llvm::Intrinsic::ID id :
       {llvm::Intrinsic::sadd_with_overflow, llvm::Intrinsic::ssub_with_overflow,
        llvm::Intrinsic::smul_with_overflow}) {
    IrGenerator gen = [id](IrModule* mod) {
      llvm::IRBuilder<> b(mod->context());
      llvm::Function* fn = MakeF(mod, &b);
      auto& ctx = mod->context();
      auto* ovf = llvm::BasicBlock::Create(ctx, "ovf", fn);
      auto* cont = llvm::BasicBlock::Create(ctx, "cont", fn);
      auto* pair =
          b.CreateBinaryIntrinsic(id, fn->getArg(0), fn->getArg(1));
      auto* val = b.CreateExtractValue(pair, 0);
      auto* flag = b.CreateExtractValue(pair, 1);
      b.CreateCondBr(flag, ovf, cont);
      b.SetInsertPoint(ovf);
      b.CreateRet(b.getInt64(static_cast<uint64_t>(-1)));
      b.SetInsertPoint(cont);
      b.CreateRet(val);
    };
    const uint64_t boundary[] = {
        0,
        1,
        static_cast<uint64_t>(-1),
        static_cast<uint64_t>(std::numeric_limits<int64_t>::min()),
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max()),
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max() - 1),
        0x100000000ull,
    };
    for (uint64_t x : boundary) {
      for (uint64_t y : boundary) {
        ExpectDispatchEnginesAgree(gen, x, y);
      }
    }
  }
}

// --- loops, memory traffic, calls --------------------------------------------

TEST(VmDispatchTest, FilterLoopWithStores) {
  // for i in [0,60): if (buf[i] > a) buf[i] = buf[i] * 3 - b; returns sum.
  IrGenerator gen = [](IrModule* mod) {
    llvm::IRBuilder<> b(mod->context());
    llvm::Function* fn = MakeF(mod, &b);
    auto& ctx = mod->context();
    auto* i64 = b.getInt64Ty();
    auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
    auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
    auto* hit = llvm::BasicBlock::Create(ctx, "hit", fn);
    auto* next = llvm::BasicBlock::Create(ctx, "next", fn);
    auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
    auto* entry = &fn->getEntryBlock();
    b.CreateBr(head);
    b.SetInsertPoint(head);
    auto* i = b.CreatePHI(i64, 2);
    auto* sum = b.CreatePHI(i64, 2);
    b.CreateCondBr(b.CreateICmpULT(i, b.getInt64(60)), body, exit);
    b.SetInsertPoint(body);
    auto* gep = b.CreateGEP(i64, fn->getArg(2), i);
    auto* v = b.CreateLoad(i64, gep);
    b.CreateCondBr(b.CreateICmpSGT(v, fn->getArg(0)), hit, next);
    b.SetInsertPoint(hit);
    auto* updated = b.CreateSub(b.CreateMul(v, b.getInt64(3)), fn->getArg(1));
    auto* gep2 = b.CreateGEP(i64, fn->getArg(2), i);
    b.CreateStore(updated, gep2);
    b.CreateBr(next);
    b.SetInsertPoint(next);
    auto* v2 = b.CreateLoad(i64, b.CreateGEP(i64, fn->getArg(2), i));
    auto* sum2 = b.CreateAdd(sum, v2);
    auto* i2 = b.CreateAdd(i, b.getInt64(1));
    b.CreateBr(head);
    b.SetInsertPoint(exit);
    b.CreateRet(sum);
    i->addIncoming(b.getInt64(0), entry);
    i->addIncoming(i2, next);
    sum->addIncoming(b.getInt64(0), entry);
    sum->addIncoming(sum2, next);
  };
  ExpectDispatchEnginesAgree(gen, 0, 5);
  ExpectDispatchEnginesAgree(gen, static_cast<uint64_t>(-200), 17);
  ExpectDispatchEnginesAgree(gen, 200, 17);  // no row passes
}

// --- disassembly round trip --------------------------------------------------

struct ParsedInst {
  char name[32];
  unsigned a1, a2, a3;
  unsigned long long lit;
};

/// Parses one Disassemble() line back into its fields.
bool ParseDisassembly(const std::string& line, ParsedInst* out) {
  return std::sscanf(line.c_str(), "%*x %31s %u %u %u 0x%llx", out->name,
                     &out->a1, &out->a2, &out->a3, &out->lit) == 5;
}

TEST(VmDispatchTest, DisassembleRoundTripsEveryOpcode) {
  // One instruction per opcode with distinctive field values; the printed
  // form must recover op, a1..a3, and lit exactly.
  BcProgram program;
  const auto num_opcodes = static_cast<uint16_t>(Opcode::kNumOpcodes);
  for (uint16_t op = 0; op < num_opcodes; ++op) {
    BcInstruction inst;
    inst.op = op;
    inst.a1 = static_cast<uint16_t>(op * 3 + 1);
    inst.a2 = static_cast<uint16_t>(op * 5 + 2);
    inst.a3 = static_cast<uint16_t>(op * 7 + 3);
    inst.lit = 0x1234000000ull + op;
    program.code.push_back(inst);
  }
  std::string disasm = program.Disassemble();
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < disasm.size()) {
    size_t nl = disasm.find('\n', pos);
    if (nl == std::string::npos) nl = disasm.size();
    std::string line = disasm.substr(pos, nl - pos);
    if (!line.empty() && line[0] != ';') lines.push_back(line);
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), static_cast<size_t>(num_opcodes));
  for (uint16_t op = 0; op < num_opcodes; ++op) {
    ParsedInst parsed;
    ASSERT_TRUE(ParseDisassembly(lines[op], &parsed)) << lines[op];
    const BcInstruction& inst = program.code[op];
    EXPECT_STREQ(parsed.name, OpcodeName(static_cast<Opcode>(op)));
    EXPECT_EQ(parsed.a1, inst.a1) << lines[op];
    EXPECT_EQ(parsed.a2, inst.a2) << lines[op];
    EXPECT_EQ(parsed.a3, inst.a3) << lines[op];
    EXPECT_EQ(parsed.lit, inst.lit) << lines[op];
  }
}

TEST(VmDispatchTest, CompactEncodingIs16Bytes) {
  static_assert(sizeof(BcInstruction) == 16, "compact encoding");
  EXPECT_EQ(sizeof(BcInstruction), 16u);
}

}  // namespace
}  // namespace aqe
