#include <gtest/gtest.h>

#include <cstring>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace aqe {
namespace {

TEST(ColumnTest, AppendAndGet) {
  Column c("x", DataType::kI64);
  c.AppendI64(10);
  c.AppendI64(-20);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetI64(0), 10);
  EXPECT_EQ(c.GetI64(1), -20);
}

TEST(ColumnTest, I32Column) {
  Column c("d", DataType::kI32);
  c.AppendI32(123);
  c.AppendI32(-1);
  EXPECT_EQ(c.GetI32(0), 123);
  EXPECT_EQ(c.GetI32(1), -1);
  EXPECT_EQ(c.GetAsI64(1), -1);
}

TEST(ColumnTest, F64Column) {
  Column c("f", DataType::kF64);
  c.AppendF64(3.5);
  EXPECT_DOUBLE_EQ(c.GetF64(0), 3.5);
}

TEST(ColumnTest, RawDataPointerMatchesValues) {
  Column c("x", DataType::kI64);
  for (int64_t i = 0; i < 100; ++i) c.AppendI64(i * 7);
  const int64_t* raw = static_cast<const int64_t*>(c.data());
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(raw[i], i * 7);
}

TEST(ColumnTest, TypeSizes) {
  EXPECT_EQ(DataTypeSize(DataType::kI32), 4);
  EXPECT_EQ(DataTypeSize(DataType::kI64), 8);
  EXPECT_EQ(DataTypeSize(DataType::kF64), 8);
  EXPECT_STREQ(DataTypeName(DataType::kI32), "i32");
}

TEST(DictionaryTest, GetOrAddIsIdempotent) {
  Dictionary d;
  int32_t a = d.GetOrAdd("MAIL");
  int32_t b = d.GetOrAdd("SHIP");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.GetOrAdd("MAIL"), a);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.Get(a), "MAIL");
}

TEST(DictionaryTest, FindAbsentReturnsMinusOne) {
  Dictionary d;
  d.GetOrAdd("A");
  EXPECT_EQ(d.Find("B"), -1);
  EXPECT_EQ(d.Find("A"), 0);
}

TEST(DictionaryTest, MatchPrefix) {
  Dictionary d;
  d.GetOrAdd("PROMO ANODIZED TIN");
  d.GetOrAdd("STANDARD PLATED BRASS");
  d.GetOrAdd("PROMO BRUSHED COPPER");
  auto bm = d.MatchPrefix("PROMO");
  ASSERT_EQ(bm.size(), 3u);
  EXPECT_EQ(bm[0], 1);
  EXPECT_EQ(bm[1], 0);
  EXPECT_EQ(bm[2], 1);
}

TEST(DictionaryTest, MatchContains) {
  Dictionary d;
  d.GetOrAdd("MED BOX");
  d.GetOrAdd("LG CASE");
  auto bm = d.MatchContains("BOX");
  EXPECT_EQ(bm[0], 1);
  EXPECT_EQ(bm[1], 0);
}

TEST(DictionaryTest, MatchIn) {
  Dictionary d;
  d.GetOrAdd("AIR");
  d.GetOrAdd("MAIL");
  d.GetOrAdd("SHIP");
  auto bm = d.MatchIn({"MAIL", "SHIP", "NOT-PRESENT"});
  EXPECT_EQ(bm[0], 0);
  EXPECT_EQ(bm[1], 1);
  EXPECT_EQ(bm[2], 1);
}

TEST(TableTest, SchemaAndRows) {
  Table t("t");
  int a = t.AddColumn("a", DataType::kI64);
  int b = t.AddColumn("b", DataType::kI32, /*dictionary=*/true);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.ColumnIndex("a"), a);
  EXPECT_EQ(t.ColumnIndex("b"), b);
  EXPECT_FALSE(t.has_dictionary(a));
  EXPECT_TRUE(t.has_dictionary(b));
  t.column(a).AppendI64(1);
  t.column(b).AppendI32(t.dictionary(b).GetOrAdd("x"));
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CatalogTest, CreateAndGet) {
  Catalog cat;
  Table* t = cat.CreateTable("foo");
  EXPECT_TRUE(cat.HasTable("foo"));
  EXPECT_FALSE(cat.HasTable("bar"));
  EXPECT_EQ(cat.GetTable("foo"), t);
}

}  // namespace
}  // namespace aqe
