#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "queries/generated_queries.h"
#include "queries/handwritten_q1.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"

namespace aqe {
namespace {

/// All TPC-H query tests share one SF-0.01 database and engine.
class TpchQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::BuildTpchDatabase(catalog_, /*sf=*/0.01);
    engine_ = new QueryEngine(catalog_, /*num_threads=*/2);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
  }
  static Catalog* catalog_;
  static QueryEngine* engine_;
};

Catalog* TpchQueryTest::catalog_ = nullptr;
QueryEngine* TpchQueryTest::engine_ = nullptr;

/// Every engine and execution mode must produce identical rows for every
/// query — this is the end-to-end guarantee behind "no work is lost when
/// switching between execution modes".
TEST_P(TpchQueryTest, AllEnginesAgree) {
  const int number = GetParam();
  QueryRunOptions volcano;
  volcano.engine = EngineKind::kVolcano;
  QueryProgram ref_program = BuildTpchQuery(number, *catalog_);
  auto reference = engine_->Run(ref_program, volcano).rows;
  ASSERT_FALSE(reference.empty()) << "q" << number << " has empty result";

  struct Config {
    EngineKind engine;
    ExecutionStrategy strategy;
    VmDispatch vm_dispatch;
    const char* label;
  };
  // Both interpreter dispatch engines must be bit-identical on every query,
  // not just the compile-time default.
  const Config configs[] = {
      {EngineKind::kVectorized, ExecutionStrategy::kBytecode,
       VmDispatch::kDefault, "vectorized"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kSwitch, "vm-switch"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kThreaded, "vm-threaded"},
      {EngineKind::kCompiled, ExecutionStrategy::kUnoptimized,
       VmDispatch::kDefault, "jit-unopt"},
      {EngineKind::kCompiled, ExecutionStrategy::kAdaptive,
       VmDispatch::kDefault, "adaptive"},
  };
  for (const Config& config : configs) {
    QueryProgram program = BuildTpchQuery(number, *catalog_);
    QueryRunOptions options;
    options.engine = config.engine;
    options.strategy = config.strategy;
    options.vm_dispatch = config.vm_dispatch;
    auto rows = engine_->Run(program, options).rows;
    EXPECT_EQ(rows, reference) << "q" << number << " " << config.label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::ValuesIn(ImplementedTpchQueries()),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

class TpchFixtureTest : public ::testing::Test {
 protected:
  static Catalog& catalog() {
    static Catalog* catalog = [] {
      auto* c = new Catalog();
      tpch::BuildTpchDatabase(c, 0.01);
      return c;
    }();
    return *catalog;
  }
};

TEST_F(TpchFixtureTest, HandwrittenQ1MatchesCompiled) {
  QueryEngine engine(&catalog(), 1);
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  auto compiled = engine.Run(q1, options).rows;
  auto handwritten = HandwrittenQ1(catalog());
  EXPECT_EQ(compiled, handwritten);
}

TEST_F(TpchFixtureTest, Q1HasExpectedGroups) {
  QueryEngine engine(&catalog(), 1);
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  auto rows = engine.Run(q1, {}).rows;
  // TPC-H Q1 always produces the 4 (returnflag, linestatus) groups.
  EXPECT_EQ(rows.size(), 4u);
  // count column is last; all counts positive, sum roughly the filtered rows.
  int64_t total = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.back(), 0);
    total += row.back();
  }
  uint64_t lineitems = catalog().GetTable("lineitem")->num_rows();
  EXPECT_GT(static_cast<uint64_t>(total), lineitems * 95 / 100);
}

TEST_F(TpchFixtureTest, Q6SelectivityIsLow) {
  QueryEngine engine(&catalog(), 1);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  auto rows = engine.Run(q6, {}).rows;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0][0], 0);  // some revenue found
}

TEST_F(TpchFixtureTest, GeneratedQueryScalesInstructions) {
  QueryEngine engine(&catalog(), 1);
  QueryProgram small = BuildGeneratedAggregateQuery(10, catalog());
  QueryProgram large = BuildGeneratedAggregateQuery(100, catalog());
  auto small_costs = engine.MeasureCompileCosts(small, false, false);
  auto large_costs = engine.MeasureCompileCosts(large, false, false);
  ASSERT_EQ(small_costs.size(), 1u);
  ASSERT_EQ(large_costs.size(), 1u);
  // ~10x the aggregates -> ~10x the instructions.
  EXPECT_GT(large_costs[0].instructions, 8 * small_costs[0].instructions);
}

TEST_F(TpchFixtureTest, GeneratedQueryAllEnginesAgree) {
  QueryEngine engine(&catalog(), 2);
  QueryRunOptions volcano;
  volcano.engine = EngineKind::kVolcano;
  QueryProgram ref_q = BuildGeneratedAggregateQuery(25, catalog());
  auto reference = engine.Run(ref_q, volcano).rows;

  QueryProgram vm_q = BuildGeneratedAggregateQuery(25, catalog());
  QueryRunOptions vm;
  vm.strategy = ExecutionStrategy::kBytecode;
  EXPECT_EQ(engine.Run(vm_q, vm).rows, reference);

  QueryProgram jit_q = BuildGeneratedAggregateQuery(25, catalog());
  QueryRunOptions jit;
  jit.strategy = ExecutionStrategy::kUnoptimized;
  EXPECT_EQ(engine.Run(jit_q, jit).rows, reference);
}

TEST_F(TpchFixtureTest, RegisterAllocationAblationOnRealQuery) {
  // §IV-C: loop-aware must produce a (much) smaller register file than
  // no-reuse on a real large worker function.
  QueryEngine engine(&catalog(), 1);
  QueryProgram big = BuildGeneratedAggregateQuery(200, catalog());
  TranslatorOptions loop_aware;
  auto aware = engine.MeasureCompileCosts(big, false, false, loop_aware);
  QueryProgram big2 = BuildGeneratedAggregateQuery(200, catalog());
  TranslatorOptions no_reuse;
  no_reuse.strategy = RegAllocStrategy::kNoReuse;
  auto noreuse = engine.MeasureCompileCosts(big2, false, false, no_reuse);
  EXPECT_LT(aware[0].register_file_bytes * 3, noreuse[0].register_file_bytes);
}

}  // namespace
}  // namespace aqe
