#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "obs/export.h"
#include "obs/memory_tracker.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/query_profile.h"
#include "obs/regression.h"
#include "obs/trace_ring.h"
#include "obs/tracer.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

TraceEvent MakeEvent(uint64_t seq) {
  TraceEvent e;
  e.start_nanos = static_cast<int64_t>(seq * 100);
  e.end_nanos = static_cast<int64_t>(seq * 100 + 50);
  e.payload = seq;
  e.query_id = static_cast<uint32_t>(seq % 7 + 1);
  e.kind = TraceEventKind::kMorsel;
  return e;
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, RetainsEventsInOrder) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) ring.Push(MakeEvent(i));
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(events[i].payload, i);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDrops) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 100; ++i) ring.Push(MakeEvent(i));
  EXPECT_EQ(ring.recorded(), 100u);
  EXPECT_EQ(ring.dropped(), 92u);
  std::vector<TraceEvent> events = ring.Snapshot();
  // Once wrapped, one slot is always reserved against a push the producer
  // might have in flight (it would alias the oldest retained seq), so a
  // snapshot returns the newest capacity-1 events, oldest first.
  ASSERT_EQ(events.size(), 7u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].payload, 93 + i);
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(9);
  EXPECT_EQ(ring.capacity(), 16u);
  TraceRing tiny(1);
  EXPECT_EQ(tiny.capacity(), 8u);  // minimum
}

TEST(TraceRingTest, ClearRestartsTheRing) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) ring.Push(MakeEvent(i));
  ring.Clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Push(MakeEvent(7));
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].payload, 7u);
}

/// One producer hammers the ring while a reader snapshots concurrently —
/// the TSan matrix in CI runs this test; every snapshot must hold
/// internally consistent (non-torn) events.
TEST(TraceRingTest, ConcurrentSnapshotSeesNoTornEvents) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TraceEvent e;
      // Self-checking event: fields derive from one counter.
      e.start_nanos = static_cast<int64_t>(i);
      e.end_nanos = static_cast<int64_t>(i + 1);
      e.payload = i;
      e.payload2 = ~i;
      e.query_id = static_cast<uint32_t>(i & 0xFFFFFFFF);
      e.kind = TraceEventKind::kMorsel;
      ring.Push(e);
      ++i;
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  uint64_t snapshots = 0, seen = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<TraceEvent> events = ring.Snapshot();
    ++snapshots;
    seen += events.size();
    uint64_t prev = 0;
    bool first = true;
    for (const TraceEvent& e : events) {
      const uint64_t i = e.payload;
      ASSERT_EQ(e.payload2, ~i) << "torn event";
      ASSERT_EQ(e.start_nanos, static_cast<int64_t>(i));
      ASSERT_EQ(e.end_nanos, static_cast<int64_t>(i + 1));
      ASSERT_EQ(e.query_id, static_cast<uint32_t>(i & 0xFFFFFFFF));
      if (!first) ASSERT_EQ(i, prev + 1) << "events out of order";
      prev = i;
      first = false;
    }
  }
  stop.store(true);
  producer.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(seen, 0u);
}

// --- EngineTracer ----------------------------------------------------------

TEST(EngineTracerTest, LanesAllocateLazilyAndSnapshotSkipsEmpty) {
  EngineTracer tracer(/*ring_capacity=*/16);
  EXPECT_EQ(tracer.Snapshot().lanes.size(), 0u);
  tracer.Record(3, MakeEvent(1));
  tracer.Record(5, MakeEvent(2));
  tracer.Record(3, MakeEvent(3));
  TraceSnapshot snap = tracer.Snapshot();
  ASSERT_EQ(snap.lanes.size(), 2u);
  EXPECT_EQ(snap.lanes[0].lane, 3);
  EXPECT_EQ(snap.lanes[0].events.size(), 2u);
  EXPECT_EQ(snap.lanes[1].lane, 5);
  EXPECT_EQ(snap.lanes[1].events.size(), 1u);
  EXPECT_EQ(snap.total_recorded(), 3u);
  EXPECT_EQ(snap.total_dropped(), 0u);
  tracer.Reset();
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(EngineTracerTest, OutOfRangeLaneClampsInsteadOfCrashing) {
  EngineTracer tracer(16);
  tracer.Record(-1, MakeEvent(1));
  tracer.Record(EngineTracer::kMaxLanes + 10, MakeEvent(2));
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, SmallValuesMapToExactBuckets) {
  // Below 2^kSubBucketBits every value gets its own bucket.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int b = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(b), v);
    EXPECT_EQ(Histogram::BucketUpperBound(b), v + 1);
  }
}

TEST(HistogramTest, BucketBoundsBracketTheValue) {
  // Every probed value must land in [lower, upper) of its own bucket, and
  // bucket indices must be monotone in the value.
  int prev = -1;
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull,
                     1000ull, 4095ull, 4096ull, 1000000ull,
                     (1ull << 40) + 12345, ~0ull}) {
    const int b = Histogram::BucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kBuckets);
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << "value " << v;
    if (v != ~0ull) {
      EXPECT_GT(Histogram::BucketUpperBound(b), v) << "value " << v;
    }
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(HistogramTest, BucketWidthIsBoundedRelativeError) {
  // Log-linear design point: width(bucket)/lower(bucket) <= 1/kSubBuckets
  // for all octave buckets, so percentiles interpolate within ~12.5%.
  for (uint64_t v = Histogram::kSubBuckets; v < (1ull << 30);
       v = v * 2 + v / 3 + 1) {
    const int b = Histogram::BucketIndex(v);
    const double lower = static_cast<double>(Histogram::BucketLowerBound(b));
    const double width =
        static_cast<double>(Histogram::BucketUpperBound(b)) - lower;
    EXPECT_LE(width / lower, 1.0 / Histogram::kSubBuckets + 1e-9)
        << "value " << v;
  }
}

TEST(HistogramTest, SnapshotPercentilesAndReset) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Uniform 1..1000: percentiles land within one bucket width (12.5%).
  EXPECT_NEAR(s.p50, 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.p95, 950.0, 950.0 * 0.13);
  EXPECT_NEAR(s.p99, 990.0, 990.0 * 0.13);
  // Percentiles never exceed the observed max.
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0.0);
}

TEST(HistogramTest, SingleValuePercentilesClampToMax) {
  Histogram h;
  h.Record(1000000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_LE(s.p50, 1000000.0);
  EXPECT_LE(s.p99, 1000000.0);
  EXPECT_GE(s.p50, 1000000.0 * (1.0 - 1.0 / Histogram::kSubBuckets));
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  Gauge* g = reg.GetGauge("test.gauge");
  Histogram* h = reg.GetHistogram("test.histo");
  EXPECT_EQ(reg.GetCounter("test.counter"), c);  // stable pointers
  c->Add(41);
  c->Add();
  g->Set(-5);
  h->Record(100);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 42u);
  EXPECT_EQ(snap.counter("test.missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  const HistogramSnapshot* hs = snap.histogram("test.histo");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
  EXPECT_EQ(snap.histogram("test.missing"), nullptr);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"test.histo\""), std::string::npos);

  // Reset zeroes counters and histograms but keeps gauges (current state).
  reg.Reset();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 0u);
  EXPECT_EQ(snap.histogram("test.histo")->count, 0u);
  EXPECT_EQ(snap.gauges[0].second, -5);
}

// --- Engine integration ----------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  static Catalog& catalog() {
    static Catalog* c = [] {
      auto* catalog = new Catalog();
      tpch::BuildTpchDatabase(catalog, /*sf=*/0.01);
      return catalog;
    }();
    return *c;
  }
};

TEST_F(ObsEngineTest, SnapshotReportsPerClassHistogramsAndCounters) {
  QueryEngine engine(&catalog(), /*num_threads=*/2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.query_class = 0;
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  options.query_class = 2;
  ASSERT_FALSE(engine.Run(q1, options).rows.empty());

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("engine.queries_submitted"), 2u);
  EXPECT_EQ(snap.counter("engine.queries_completed"), 2u);
  EXPECT_GT(snap.counter("exec.morsels"), 0u);
  EXPECT_GT(snap.counter("sched.executed_slices"), 0u);
  EXPECT_GT(snap.counter("sched.class_slices.class0"), 0u);
  EXPECT_GT(snap.counter("sched.class_slices.class2"), 0u);
  EXPECT_GT(snap.counter("translator.programs"), 0u);
  EXPECT_GT(snap.counter("trace.recorded"), 0u);

  // Queue-wait and exec-latency histograms per scheduling class: exactly
  // one query each in classes 0 and 2, none elsewhere.
  for (int cls : {0, 2}) {
    const auto* wait = snap.histogram("admission.queue_wait_us.class" +
                                      std::to_string(cls));
    const auto* lat = snap.histogram("engine.exec_latency_us.class" +
                                     std::to_string(cls));
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(wait->count, 1u) << "class " << cls;
    EXPECT_EQ(lat->count, 1u) << "class " << cls;
    EXPECT_GT(lat->max, 0u) << "class " << cls;
  }
  for (int cls : {1, 3}) {
    EXPECT_EQ(snap.histogram("engine.exec_latency_us.class" +
                             std::to_string(cls))
                  ->count,
              0u);
  }

  // Cache counters fold in (one miss per pipeline on this cold engine).
  EXPECT_GT(snap.counter("cache.bytecode_misses"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"),
            engine.artifact_cache_stats().bytecode_misses);
}

TEST_F(ObsEngineTest, ResetObservabilityStatsZeroesEverything) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  ASSERT_GT(engine.ObservabilitySnapshot().counter("exec.morsels"), 0u);

  engine.ResetObservabilityStats();
  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("exec.morsels"), 0u);
  EXPECT_EQ(snap.counter("engine.queries_completed"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"), 0u);
  EXPECT_EQ(snap.counter("translator.programs"), 0u);
  EXPECT_EQ(snap.counter("trace.recorded"), 0u);
  EXPECT_EQ(snap.histogram("engine.exec_latency_us.class0")->count, 0u);
  // Residency gauges survive: the cache still holds the artifacts.
  int64_t entries = -1;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "cache.entries") entries = value;
  }
  EXPECT_GT(entries, 0);

  // The warm rerun now shows hits against clean counters.
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  snap = engine.ObservabilitySnapshot();
  EXPECT_GT(snap.counter("cache.bytecode_hits"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"), 0u);
}

TEST_F(ObsEngineTest, ArtifactCacheStatsDeltaAndReset) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  const ArtifactCacheStats cold = engine.artifact_cache_stats();
  EXPECT_GT(cold.bytecode_misses, 0u);

  ASSERT_FALSE(engine.Run(q6).rows.empty());
  const ArtifactCacheStats warm = engine.artifact_cache_stats() - cold;
  EXPECT_GT(warm.bytecode_hits, 0u);
  EXPECT_EQ(warm.bytecode_misses, 0u);
  EXPECT_EQ(warm.entry_misses, 0u);
  // bytes/entries keep the current residency, not a delta.
  EXPECT_GT(warm.entries, 0u);
}

TEST_F(ObsEngineTest, VmOpcodeCountersAppearWhileProfiling) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  engine.set_vm_opcode_profiling(true);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;  // stay interpreted
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  engine.set_vm_opcode_profiling(false);

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  uint64_t vm_ops = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("vm.op.", 0) == 0) vm_ops += value;
  }
  EXPECT_GT(vm_ops, 0u) << "no vm.op.* counters in the snapshot";

  VmResetProfileCounts();
  EXPECT_TRUE(VmProfileCounts().empty());
}

TEST_F(ObsEngineTest, ChromeTraceExportIsWellFormedForAdaptiveRun) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;
  options.adaptive_first_eval_seconds = 1e-6;  // force early mode decisions
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  ASSERT_FALSE(engine.Run(q1, options).rows.empty());

  const std::string json = engine.ExportChromeTrace();
  // Golden structure: the stable skeleton every viewer needs. Event
  // counts and timestamps vary run to run; the shape must not.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"slice\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"admission-wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos);
  // Per-query flows: both queries start and finish.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy without a JSON
  // parser; CI's check_trace.py does the full parse).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);

  // The text renderer subsumes the old TraceRecorder::Render format.
  const std::string text = engine.RenderTrace(/*width=*/80);
  EXPECT_NE(text.find("time ->"), std::string::npos);
  EXPECT_NE(text.find("thread 0 |"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST(EngineTracerTest, LaneStatsReportPerLaneRecordedAndDropped) {
  EngineTracer tracer(/*ring_capacity=*/8);
  for (uint64_t i = 0; i < 3; ++i) tracer.Record(0, MakeEvent(i));
  for (uint64_t i = 0; i < 20; ++i) tracer.Record(2, MakeEvent(i));
  std::vector<EngineTracer::LaneStats> stats = tracer.lane_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].lane, 0);
  EXPECT_EQ(stats[0].recorded, 3u);
  EXPECT_EQ(stats[0].dropped, 0u);
  EXPECT_EQ(stats[1].lane, 2);
  EXPECT_EQ(stats[1].recorded, 20u);
  EXPECT_EQ(stats[1].dropped, 12u);
}

// --- MetricsSnapshot serialization -----------------------------------------

TEST(MetricsRegistryTest, ToJsonKeepsStableKeyOrderAndBuckets) {
  MetricsRegistry reg;
  // Registered out of order on purpose: snapshots iterate the registry's
  // ordered map, so serialization order is name order, not insert order.
  reg.GetCounter("zz.last")->Add(1);
  reg.GetCounter("aa.first")->Add(2);
  reg.GetCounter("mm.middle")->Add(3);
  Histogram* h = reg.GetHistogram("t.h");
  h->Record(1);
  h->Record(1);
  h->Record(2);
  h->Record(100);

  MetricsSnapshot snap = reg.Snapshot();
  const std::string json = snap.ToJson();
  const size_t a = json.find("\"aa.first\":2");
  const size_t m = json.find("\"mm.middle\":3");
  const size_t z = json.find("\"zz.last\":1");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  // Same input, same output: the loader in ci/check_perf_floors.py relies
  // on deterministic serialization.
  EXPECT_EQ(json, reg.Snapshot().ToJson());

  // Bucket serialization: (exclusive upper bound, count) pairs, ascending,
  // only non-empty buckets, counts summing to the histogram count.
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0].second;
  ASSERT_EQ(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[0], (std::pair<uint64_t, uint64_t>{2, 2}));
  EXPECT_EQ(hs.buckets[1], (std::pair<uint64_t, uint64_t>{3, 1}));
  const uint64_t upper100 =
      Histogram::BucketUpperBound(Histogram::BucketIndex(100));
  EXPECT_EQ(hs.buckets[2],
            (std::pair<uint64_t, uint64_t>{upper100, 1}));
  uint64_t in_buckets = 0;
  for (const auto& [upper, n] : hs.buckets) in_buckets += n;
  EXPECT_EQ(in_buckets, hs.count);
  const std::string expect_buckets =
      "\"buckets\":[[2,2],[3,1],[" + std::to_string(upper100) + ",1]]";
  EXPECT_NE(json.find(expect_buckets), std::string::npos) << json;
}

TEST(PrometheusTextTest, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("engine.queries_completed")->Add(7);
  reg.GetGauge("cache.bytes")->Set(-3);
  Histogram* h = reg.GetHistogram("exec_latency.us.class0");
  h->Record(1);
  h->Record(1);
  h->Record(5);

  const std::string text = PrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE aqe_engine_queries_completed counter\n"
                      "aqe_engine_queries_completed 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aqe_cache_bytes gauge\naqe_cache_bytes -3\n"),
            std::string::npos);
  // Dots sanitize to underscores; buckets are cumulative and close with
  // +Inf == count, then _sum and _count.
  EXPECT_NE(text.find("# TYPE aqe_exec_latency_us_class0 histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqe_exec_latency_us_class0_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqe_exec_latency_us_class0_bucket{le=\"6\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqe_exec_latency_us_class0_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqe_exec_latency_us_class0_sum 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqe_exec_latency_us_class0_count 3\n"),
            std::string::npos);
}

// --- RegressionTracker -----------------------------------------------------

RegressionTracker::Observation MakeObs(uint64_t fp, double service_ms,
                                       double queue_ms = 0,
                                       ExecMode mode = ExecMode::kBytecode) {
  RegressionTracker::Observation o;
  o.fingerprint = fp;
  o.query_id = 1;
  o.service_ms = service_ms;
  o.queue_wait_ms = queue_ms;
  o.final_mode = mode;
  o.plan_name = "plan";
  return o;
}

TEST(RegressionTrackerTest, StaysSilentBeforeMinRunsAndOnStableLatency) {
  RegressionTracker tracker;
  // A huge second run must not alert: the baseline has no support yet.
  EXPECT_FALSE(tracker.Observe(MakeObs(1, 10.0), nullptr));
  EXPECT_FALSE(tracker.Observe(MakeObs(1, 1000.0), nullptr));
  // Stable latency never alerts regardless of run count.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(tracker.Observe(MakeObs(2, 10.0), nullptr)) << "run " << i;
  }
  EXPECT_EQ(tracker.anomaly_count(), 0u);
}

TEST(RegressionTrackerTest, FlagsDeviationAndNamesCauses) {
  RegressionTracker tracker;  // default factor 4.0
  // kUnknown: slow run with no probe evidence.
  for (int i = 0; i < 5; ++i) ASSERT_FALSE(tracker.Observe(MakeObs(1, 10.0), nullptr));
  AnomalyRecord rec;
  ASSERT_TRUE(tracker.Observe(MakeObs(1, 100.0), &rec));
  EXPECT_EQ(rec.cause, AnomalyCause::kUnknown);
  EXPECT_NEAR(rec.expected_ms, 10.0, 1e-9);
  EXPECT_NEAR(rec.observed_ms, 100.0, 1e-9);

  // kCacheEvicted wins over every other cause.
  tracker.MarkEvicted(1);
  ASSERT_TRUE(tracker.Observe(MakeObs(1, 1000.0, /*queue_ms=*/5000.0), &rec));
  EXPECT_EQ(rec.cause, AnomalyCause::kCacheEvicted);

  // kModeRegressed: the fingerprint used to reach optimized code.
  for (int i = 0; i < 5; ++i) {
    ASSERT_FALSE(tracker.Observe(
        MakeObs(2, 10.0, 0, ExecMode::kOptimized), nullptr));
  }
  ASSERT_TRUE(tracker.Observe(
      MakeObs(2, 100.0, 0, ExecMode::kBytecode), &rec));
  EXPECT_EQ(rec.cause, AnomalyCause::kModeRegressed);

  // kQueueWait: wait dominated the latency.
  for (int i = 0; i < 5; ++i) ASSERT_FALSE(tracker.Observe(MakeObs(3, 10.0), nullptr));
  ASSERT_TRUE(tracker.Observe(MakeObs(3, 100.0, /*queue_ms=*/500.0), &rec));
  EXPECT_EQ(rec.cause, AnomalyCause::kQueueWait);

  EXPECT_EQ(tracker.anomaly_count(), 4u);
  EXPECT_EQ(tracker.RecentAnomalies().size(), 4u);
  tracker.ResetAnomalies();
  EXPECT_EQ(tracker.anomaly_count(), 0u);
  EXPECT_TRUE(tracker.RecentAnomalies().empty());

  // Baselines survived the reset: the next slow run still alerts.
  ASSERT_TRUE(tracker.Observe(MakeObs(3, 10000.0), &rec));
}

TEST(RegressionTrackerTest, MadFloorSuppressesMicrosecondNoise) {
  // A plan whose EWMA sits at 50us: 4x the EWMA is only 0.2ms — below the
  // absolute guard, so scheduler noise on fast plans never alerts.
  RegressionTracker tracker;
  for (int i = 0; i < 10; ++i) ASSERT_FALSE(tracker.Observe(MakeObs(1, 0.05), nullptr));
  EXPECT_FALSE(tracker.Observe(MakeObs(1, 0.4), nullptr));
  // Beyond the floor's 4 x 0.25ms guard it does alert.
  EXPECT_TRUE(tracker.Observe(MakeObs(1, 5.0), nullptr));
}

TEST_F(ObsEngineTest, ConcurrentQueriesRecordSafely) {
  // Concurrent Submit stress under the obs layer: the TSan CI matrix runs
  // this test to prove slices/morsels/histograms record race-free.
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  constexpr int kClients = 4, kPerClient = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRunOptions options;
        options.query_class = c % kNumTaskClasses;
        if (engine.Run(q6, options).rows.empty()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("engine.queries_completed"),
            static_cast<uint64_t>(kClients * kPerClient));
  const std::string json = engine.ExportChromeTrace();
  EXPECT_NE(json.find("\"name\":\"slice\""), std::string::npos);
}

// --- Query profiles / EXPLAIN ANALYZE --------------------------------------

TEST_F(ObsEngineTest, ProfileIsAbsentUnlessRequested) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryRunResult result = engine.Run(q6);
  EXPECT_EQ(result.profile, nullptr);
  const std::string text = ExplainAnalyze(result);
  EXPECT_NE(text.find("unavailable"), std::string::npos);
}

TEST_F(ObsEngineTest, ExplainAnalyzeAccountsModeTimeAndSwitchVerdicts) {
  QueryEngine engine(&catalog(), 2);
  // Multi-pipeline adaptive query (Q3: two builds + probe) forced through
  // a mode switch: free modeled compilation, huge modeled speedup.
  QueryProgram q3 = BuildTpchQuery(3, catalog());
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;
  options.single_threaded = true;  // deterministic interval accounting
  options.collect_profile = true;
  options.adaptive_first_eval_seconds = 0;
  options.cost_model.unopt_base_seconds = 0;
  options.cost_model.unopt_per_instruction_seconds = 0;
  options.cost_model.opt_base_seconds = 0;
  options.cost_model.opt_per_instruction_seconds = 0;
  options.cost_model.unopt_speedup = 1.01;
  options.cost_model.opt_speedup = 100.0;
  QueryRunResult result = engine.Run(q3, options);
  ASSERT_FALSE(result.rows.empty());
  ASSERT_NE(result.profile, nullptr);
  const QueryProfile& prof = *result.profile;
  EXPECT_EQ(prof.plan_name, "q3");
  ASSERT_EQ(prof.pipelines.size(), result.pipelines.size());
  ASSERT_GE(prof.pipelines.size(), 2u);
  EXPECT_FALSE(prof.lossy);

  // Acceptance: per-pipeline per-mode wall time plus the profile's
  // engine-step remainder sums to the query's exec_seconds_total within
  // 5% — the only unattributed time is morsel-loop bookkeeping between
  // morsel spans.
  double mode_wall_sum = 0;
  uint64_t mode_tuples = 0;
  for (const PipelineProfile& pp : prof.pipelines) {
    EXPECT_FALSE(pp.modes.empty()) << pp.name;
    for (const ModeSliceProfile& m : pp.modes) {
      EXPECT_GT(m.morsels, 0u);
      EXPECT_GE(m.wall_seconds, 0.0);
      EXPECT_LE(m.wall_seconds, m.busy_seconds + 1e-9);  // union <= sum
      mode_wall_sum += m.wall_seconds;
      mode_tuples += m.tuples;
    }
  }
  EXPECT_GT(mode_wall_sum, 0.0);
  EXPECT_GE(prof.engine_step_seconds, 0.0);
  EXPECT_NEAR(mode_wall_sum + prof.engine_step_seconds,
              result.exec_seconds_total, 0.05 * result.exec_seconds_total)
      << ExplainAnalyze(result);
  // Every pipeline tuple went through exactly one mode's morsels.
  uint64_t pipeline_tuples = 0;
  for (const PipelineReport& r : result.pipelines) pipeline_tuples += r.tuples;
  EXPECT_EQ(mode_tuples, pipeline_tuples);

  // At least one mode switch with a predicted-vs-realized verdict.
  size_t switches = 0;
  for (const PipelineProfile& pp : prof.pipelines) {
    for (const ModeSwitchProfile& sw : pp.switches) {
      ++switches;
      EXPECT_EQ(sw.target, ExecMode::kOptimized);
      EXPECT_GT(sw.predicted_seconds, 0.0);
      EXPECT_GT(sw.t_current_seconds, 0.0);
      EXPECT_GT(sw.realized_seconds, 0.0);
      EXPECT_GT(sw.r0, 0.0);
      EXPECT_TRUE(std::isfinite(sw.error_pct()));
    }
  }
  EXPECT_GE(switches, 1u);

  const std::string text = ExplainAnalyze(result);
  EXPECT_NE(text.find("EXPLAIN ANALYZE  q3"), std::string::npos);
  EXPECT_NE(text.find("engine steps "), std::string::npos);
  EXPECT_NE(text.find("pipeline "), std::string::npos);
  EXPECT_NE(text.find("switch -> optimized: predicted"), std::string::npos);
  EXPECT_NE(text.find("realized"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);

  const std::string json = prof.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"plan\":\"q3\""), std::string::npos);
  EXPECT_NE(json.find("\"pipelines\":["), std::string::npos);
  EXPECT_NE(json.find("\"switches\":["), std::string::npos);
}

// --- Regression sentinel ---------------------------------------------------

TEST_F(ObsEngineTest, SentinelFlagsCacheEvictionSlowdownAndNamesCause) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q3 = BuildTpchQuery(3, catalog());
  QueryRunOptions options;
  // Adaptive with a modeled 100x speedup, single-threaded so compilation
  // blocks the query: the cold run pays the JIT wall time, warm runs reuse
  // cached machine code — a forced eviction later costs an order of
  // magnitude, far beyond any MAD guard.
  options.strategy = ExecutionStrategy::kAdaptive;
  options.single_threaded = true;
  options.adaptive_first_eval_seconds = 0;
  options.cost_model.unopt_base_seconds = 0;
  options.cost_model.unopt_per_instruction_seconds = 0;
  options.cost_model.opt_base_seconds = 0;
  options.cost_model.opt_per_instruction_seconds = 0;
  options.cost_model.unopt_speedup = 1.01;
  options.cost_model.opt_speedup = 100.0;
  // Enough warm runs for the MAD guard to decay past the cold first run's
  // compile spike (the sentinel deliberately arms slowly after a cold
  // start so one-off compiles never alert).
  for (int i = 0; i < 25; ++i) {
    ASSERT_FALSE(engine.Run(q3, options).rows.empty());
  }
  // Warm phase is quiet at the default deviation factor.
  EXPECT_EQ(engine.ObservabilitySnapshot().counter("engine.anomalies"), 0u);
  EXPECT_TRUE(engine.RecentAnomalies().empty());

  // Evict everything: the rerun pays codegen + translation again, which
  // dwarfs this plan's warm bytecode service time. A loaded CI machine
  // can jitter a warm run enough to widen the MAD guard past one rerun's
  // deviation, so probe with retries, re-quieting the baseline with warm
  // runs between attempts.
  const auto saw_eviction_anomaly = [&engine] {
    for (const AnomalyRecord& a : engine.RecentAnomalies()) {
      if (a.cause == AnomalyCause::kCacheEvicted) return true;
    }
    return false;
  };
  engine.set_anomaly_deviation_factor(1.3);
  for (int attempt = 0; attempt < 4 && !saw_eviction_anomaly(); ++attempt) {
    if (attempt > 0) {
      for (int i = 0; i < 15; ++i) {
        ASSERT_FALSE(engine.Run(q3, options).rows.empty());
      }
    }
    engine.ClearArtifactCache();
    ASSERT_FALSE(engine.Run(q3, options).rows.empty());
  }

  bool flagged = false;
  for (const AnomalyRecord& a : engine.RecentAnomalies()) {
    if (a.cause != AnomalyCause::kCacheEvicted) continue;
    flagged = true;
    EXPECT_GT(a.observed_ms, a.expected_ms);
    EXPECT_EQ(a.plan_name, "q3");
  }
  ASSERT_TRUE(flagged);

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_GE(snap.counter("engine.anomalies"), 1u);
  EXPECT_GE(snap.counter("engine.anomalies.cache_evicted"), 1u);
  EXPECT_EQ(snap.counter("engine.anomalies.mode_regressed"), 0u);

  // The kAnomaly instant landed in the trace for the exporters.
  bool traced = false;
  for (const auto& lane : engine.tracer().Snapshot().lanes) {
    for (const TraceEvent& e : lane.events) {
      if (e.kind == TraceEventKind::kAnomaly &&
          static_cast<AnomalyCause>(e.detail) ==
              AnomalyCause::kCacheEvicted) {
        traced = true;
        EXPECT_GT(e.d1, e.d0);  // observed > expected
      }
    }
  }
  EXPECT_TRUE(traced);
  EXPECT_NE(engine.ExportChromeTrace().find("\"name\":\"anomaly\""),
            std::string::npos);
}

// --- Snapshot / reset coherence --------------------------------------------

TEST_F(ObsEngineTest, SnapshotNeverObservesHalfAReset) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  constexpr uint64_t kQueries = 3;
  for (uint64_t i = 0; i < kQueries; ++i) {
    ASSERT_FALSE(engine.Run(q6).rows.empty());
  }
  // With the engine quiesced, queries_completed and cost_feedback_updates
  // are frozen and equal. A reset zeroes both under the stats epoch lock,
  // so every concurrent snapshot sees them equal — all-old or all-new,
  // never a mix. The TSan CI leg runs this test.
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    for (int i = 0; i < 100; ++i) engine.ResetObservabilityStats();
    stop.store(true);
  });
  uint64_t snapshots = 0;
  int64_t last_epoch = -1;
  while (!stop.load()) {
    MetricsSnapshot snap = engine.ObservabilitySnapshot();
    ++snapshots;
    const uint64_t completed = snap.counter("engine.queries_completed");
    ASSERT_TRUE(completed == 0 || completed == kQueries) << completed;
    ASSERT_EQ(completed, snap.counter("cache.cost_feedback_updates"));
    ASSERT_EQ(completed, snap.counter("engine.queries_submitted"));
    for (const auto& [name, value] : snap.gauges) {
      if (name == "obs.epoch") {
        ASSERT_GE(value, last_epoch);  // epochs only move forward
        last_epoch = value;
      }
    }
  }
  resetter.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(engine.ObservabilitySnapshot().gauges.back().second, 100);
}

// --- QueryMemoryTracker ----------------------------------------------------

TEST(MemoryTrackerTest, LargeChargesAreExactAndPeakIsHighWater) {
  QueryMemoryTracker t;
  // Charges >= kFlushBytes bypass the thread slots and fold immediately,
  // so both current and peak are exact.
  t.Charge(1u << 20);
  t.Charge(2u << 20);
  EXPECT_EQ(t.current_bytes(), 3u << 20);
  EXPECT_EQ(t.peak_bytes(), 3u << 20);
  t.Release(2u << 20);
  EXPECT_EQ(t.current_bytes(), 1u << 20);
  EXPECT_EQ(t.peak_bytes(), 3u << 20);  // high-water never recedes
  t.Release(1u << 20);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemoryTrackerTest, SmallChargesStayExactInCurrent) {
  QueryMemoryTracker t;
  // Below-threshold charges park in a thread slot; current_bytes folds the
  // residues in, so it is exact at any quiesce point regardless.
  for (int i = 0; i < 1000; ++i) t.Charge(100);
  EXPECT_EQ(t.current_bytes(), 100000u);
  // 100 KB crossed kFlushBytes at least once, so the shared counter (and
  // with it the peak) saw a fold.
  EXPECT_GT(t.peak_bytes(), 0u);
  for (int i = 0; i < 1000; ++i) t.Release(100);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemoryTrackerTest, SoftLimitLatchesAndNeverUnlatches) {
  QueryMemoryTracker t;
  t.set_soft_limit(1u << 20);
  EXPECT_FALSE(t.over_budget());
  t.Charge(512u << 10);
  EXPECT_FALSE(t.over_budget());
  t.Charge(1u << 20);  // crosses the limit
  EXPECT_TRUE(t.over_budget());
  // Releasing below the limit does not unlatch: a query that ever exceeded
  // its budget is failed, not forgiven.
  t.Release(1u << 20);
  t.Release(512u << 10);
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_TRUE(t.over_budget());
}

TEST(MemoryTrackerTest, ConcurrentChargeReleaseBalancesToZero) {
  // TSan matrix target: threads hammer matched charge/release pairs through
  // the thread-cached slots; the books must balance exactly afterwards.
  QueryMemoryTracker t;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> threads;
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&t] {
      for (int i = 0; i < kIters; ++i) {
        t.Charge(4096);
        t.Charge(96 << 10);  // above kFlushBytes: folds directly
        t.Release(96 << 10);
        t.Release(4096);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current_bytes(), 0u);
  // Each thread held at most ~100 KB plus one unflushed slot residue.
  EXPECT_GT(t.peak_bytes(), 0u);
  EXPECT_LE(t.peak_bytes(),
            static_cast<uint64_t>(kThreads) *
                ((100u << 10) +
                 static_cast<uint64_t>(QueryMemoryTracker::kFlushBytes)));
}

// --- Worker beacons / continuous profiler ----------------------------------

TEST(BeaconTest, PackedWordRoundTripsAllFields) {
  const uint64_t w = PackBeaconWord(/*query_id=*/0xDEADBEEF,
                                    /*pipeline=*/0x1234, /*mode=*/2,
                                    BeaconActivity::kMorsel);
  EXPECT_EQ(static_cast<uint32_t>(w >> 32), 0xDEADBEEFu);
  EXPECT_EQ(static_cast<uint16_t>(w >> 16), 0x1234u);
  EXPECT_EQ(static_cast<uint8_t>(w >> 8), 2u);
  EXPECT_EQ(static_cast<uint8_t>(w),
            static_cast<uint8_t>(BeaconActivity::kMorsel));
}

TEST(BeaconTest, SamplerNeverObservesTornAttribution) {
  // The profiler folds attribution from word0 alone — a single atomic word,
  // so a sample can never mix one publication's query id with another's
  // pipeline/mode/activity. Publish packed words whose fields all derive
  // from one counter and assert every accepted sample is self-consistent;
  // SampleBeacon's re-read additionally discards samples taken while word0
  // moved. The TSan CI leg runs this test.
  WorkerBeacon beacon;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    uint32_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      PublishBeacon(&beacon, /*query_id=*/i,
                    /*pipeline=*/static_cast<uint16_t>(i),
                    /*mode=*/static_cast<uint8_t>(i % 3),
                    BeaconActivity::kMorsel, /*detail=*/i * 31ull);
      ++i;
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  uint64_t accepted = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    uint64_t w0 = 0, w1 = 0;
    if (!SampleBeacon(beacon, &w0, &w1) || w0 == 0) continue;
    const uint32_t qid = static_cast<uint32_t>(w0 >> 32);
    ASSERT_EQ(static_cast<uint16_t>(w0 >> 16),
              static_cast<uint16_t>(qid));
    ASSERT_EQ(static_cast<uint8_t>(w0 >> 8),
              static_cast<uint8_t>(qid % 3));
    ASSERT_EQ(static_cast<uint8_t>(w0),
              static_cast<uint8_t>(BeaconActivity::kMorsel));
    ++accepted;
  }
  stop.store(true);
  publisher.join();
  EXPECT_GT(accepted, 0u);
  ClearBeacon(&beacon);
  uint64_t w0 = 1, w1 = 1;
  ASSERT_TRUE(SampleBeacon(beacon, &w0, &w1));
  EXPECT_EQ(w0, 0u);  // cleared lane samples as idle
}

TEST(ContinuousProfilerTest, SamplesBeaconsAndRendersCollapsedStacks) {
  MetricsRegistry reg;
  BeaconBoard board;
  // Publish a steady state on two lanes, then sample fast enough that a
  // short sleep collects plenty.
  PublishBeacon(board.lane(0), /*query_id=*/7, /*pipeline=*/1, /*mode=*/0,
                BeaconActivity::kMorsel, 1024);
  PublishBeacon(board.lane(1), /*query_id=*/7, /*pipeline=*/2, /*mode=*/2,
                BeaconActivity::kCompile, 99);
  Counter* samples = reg.GetCounter("profiler.samples");
  ContinuousProfiler profiler(&board, /*hz=*/2000, samples);
  EXPECT_EQ(profiler.hz(), 2000);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (profiler.total_samples() < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(profiler.total_samples(), 20u);

  const uint64_t retired = profiler.RetireQuery(7, "q_test");
  EXPECT_GT(retired, 0u);
  const std::string stacks = profiler.CollapsedStacks();
  EXPECT_NE(stacks.find("engine;q_test;pipeline1;bytecode;morsel"),
            std::string::npos)
      << stacks;
  EXPECT_NE(stacks.find("engine;q_test;pipeline2;optimized;compile"),
            std::string::npos)
      << stacks;
  // Well-formed collapsed-stack text: "frame;frame;... count" per line.
  size_t lines = 0;
  size_t pos = 0;
  while (pos < stacks.size()) {
    size_t eol = stacks.find('\n', pos);
    if (eol == std::string::npos) eol = stacks.size();
    const std::string line = stacks.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    EXPECT_EQ(line.find(' '), space) << "one space, before the count: "
                                     << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      ASSERT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_GT(reg.Snapshot().counter("profiler.samples"), 0u);

  profiler.Reset();
  EXPECT_EQ(profiler.RetireQuery(7, "q_test"), 0u);
}

// --- Trace-ring saturation: bulk sampling vs lossless criticals ------------

TEST(EngineTracerTest, BulkSamplingUnderPressureKeepsCriticalsLossless) {
  EngineTracer tracer(/*ring_capacity=*/8);
  // 40 bulk morsel events into a capacity-8 ring: once wrapped, further
  // bulk events are decimated 1-in-kBulkSampleEvery and the skips are
  // accounted as dropped_sampled — deliberate sampling, not loss.
  for (uint64_t i = 0; i < 40; ++i) tracer.Record(1, MakeEvent(i));
  // Critical events land in their own ring and must all survive.
  for (uint64_t i = 0; i < 5; ++i) {
    TraceEvent e = MakeEvent(100 + i);
    e.kind = TraceEventKind::kModeSwitch;
    tracer.Record(1, e);
  }
  EXPECT_EQ(tracer.total_recorded(), 45u);
  EXPECT_GT(tracer.total_dropped_sampled(), 0u);
  EXPECT_EQ(tracer.total_dropped_lost(), 0u);
  EXPECT_EQ(tracer.total_dropped(),
            tracer.total_dropped_sampled() + tracer.total_dropped_lost());

  TraceSnapshot snap = tracer.Snapshot();
  size_t switches = 0, morsels = 0;
  for (const auto& lane : snap.lanes) {
    EXPECT_EQ(lane.dropped, lane.dropped_sampled + lane.dropped_lost);
    for (const TraceEvent& e : lane.events) {
      switches += e.kind == TraceEventKind::kModeSwitch;
      morsels += e.kind == TraceEventKind::kMorsel;
    }
  }
  EXPECT_EQ(switches, 5u);  // every critical event retained
  EXPECT_GT(morsels, 0u);   // a sampled residue of the bulk stream remains
}

// --- Zero-count histogram suppression in exports ---------------------------

TEST(MetricsRegistryTest, ZeroCountHistogramsOmittedFromExportsOnly) {
  MetricsRegistry reg;
  reg.GetHistogram("empty.h");  // registered, never recorded
  reg.GetHistogram("used.h")->Record(5);
  MetricsSnapshot snap = reg.Snapshot();
  // The in-memory snapshot keeps both (programmatic consumers see the
  // registry as-is) ...
  ASSERT_EQ(snap.histograms.size(), 2u);
  ASSERT_NE(snap.histogram("empty.h"), nullptr);
  // ... but the serialized exports skip count == 0 series so per-class
  // histogram families don't bloat /metrics with empty classes.
  const std::string json = snap.ToJson();
  EXPECT_EQ(json.find("empty.h"), std::string::npos);
  EXPECT_NE(json.find("used.h"), std::string::npos);
  const std::string prom = PrometheusText(snap);
  EXPECT_EQ(prom.find("aqe_empty_h"), std::string::npos);
  EXPECT_NE(prom.find("aqe_used_h"), std::string::npos);
}

// --- Per-class memory budgets (engine) -------------------------------------

TEST_F(ObsEngineTest, QueryResultsReportPeakMemory) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.collect_profile = true;
  QueryRunResult r = engine.Run(q1, options);
  ASSERT_FALSE(r.rows.empty());
  // Q1 builds an aggregation table and output chunks — all tracked.
  EXPECT_GT(r.peak_memory_bytes, 0u);
  ASSERT_NE(r.profile, nullptr);
  EXPECT_EQ(r.profile->peak_memory_bytes, r.peak_memory_bytes);
  const std::string text = ExplainAnalyze(r);
  EXPECT_NE(text.find("peak memory"), std::string::npos);
  EXPECT_NE(text.find("cpu-samples"), std::string::npos);

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  const auto* h = snap.histogram("mem.query_peak_bytes.class0");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->max, r.peak_memory_bytes);
  int64_t peak_gauge = -1, current_gauge = -1;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "mem.peak_bytes") peak_gauge = value;
    if (name == "mem.current_bytes") current_gauge = value;
  }
  EXPECT_EQ(peak_gauge, static_cast<int64_t>(r.peak_memory_bytes));
  EXPECT_GE(current_gauge, 0);
}

TEST_F(ObsEngineTest, AdmissionRejectsOverBudgetClassAndSparesOthers) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryRunOptions options;
  options.query_class = 3;
  // Learn the footprint: warm runs seed the fingerprint's peak EWMA that
  // admission consults.
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  }

  engine.set_class_memory_budget(3, 1024);  // far below any real footprint
  bool threw = false;
  try {
    engine.Run(q6, options);
  } catch (const MemoryBudgetExceeded& e) {
    threw = true;
    EXPECT_TRUE(e.at_admission());
    EXPECT_EQ(e.query_class(), 3);
    EXPECT_EQ(e.budget_bytes(), 1024u);
    EXPECT_GT(e.attempted_bytes(), 1024u);
    EXPECT_NE(std::string(e.what()).find("admission"), std::string::npos);
  }
  ASSERT_TRUE(threw);
  // The uncapped class is untouched by class 3's budget.
  QueryRunOptions class0;
  class0.query_class = 0;
  EXPECT_FALSE(engine.Run(q6, class0).rows.empty());

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("mem.budget_rejections.admission"), 1u);
  EXPECT_EQ(snap.counter("mem.budget_rejections.runtime"), 0u);
  // A rejected query never ran: submitted 5, completed 4.
  EXPECT_EQ(snap.counter("engine.queries_submitted"), 5u);
  EXPECT_EQ(snap.counter("engine.queries_completed"), 4u);

  // Lifting the budget readmits the class.
  engine.set_class_memory_budget(3, 0);
  EXPECT_FALSE(engine.Run(q6, options).rows.empty());
}

TEST_F(ObsEngineTest, RuntimeBudgetCrossingFailsTypedMidQuery) {
  // Fresh engine: no learned footprint, so a tiny budget passes admission
  // (estimate 0) and the tracker crosses it at the first allocation; the
  // engine fails the query at a slice boundary with at_admission()==false.
  QueryEngine engine(&catalog(), 2);
  engine.set_class_memory_budget(2, 1);
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.query_class = 2;
  bool threw = false;
  try {
    engine.Run(q1, options);
  } catch (const MemoryBudgetExceeded& e) {
    threw = true;
    EXPECT_FALSE(e.at_admission());
    EXPECT_EQ(e.query_class(), 2);
    EXPECT_EQ(e.budget_bytes(), 1u);
    EXPECT_GT(e.attempted_bytes(), 1u);
  }
  ASSERT_TRUE(threw);
  EXPECT_GE(engine.ObservabilitySnapshot().counter(
                "mem.budget_rejections.runtime"),
            1u);
  // The runtime failure fed the observed peak back into the fingerprint's
  // admission estimate: resubmitting the same plan under the same budget
  // is rejected at admission, without executing to the failure point.
  threw = false;
  try {
    engine.Run(q1, options);
  } catch (const MemoryBudgetExceeded& e) {
    threw = true;
    EXPECT_TRUE(e.at_admission());
    EXPECT_EQ(e.query_class(), 2);
  }
  ASSERT_TRUE(threw);
  EXPECT_GE(engine.ObservabilitySnapshot().counter(
                "mem.budget_rejections.admission"),
            1u);
  // The engine stays healthy: the same query completes once uncapped.
  engine.set_class_memory_budget(2, 0);
  EXPECT_FALSE(engine.Run(q1, options).rows.empty());
}

TEST_F(ObsEngineTest, EngineFlamegraphCoversCompletedQueries) {
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.profile_hz = 4000;  // aggressive cadence: fast test
  QueryEngine engine(&catalog(), engine_options);
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  // Run until the sampler has demonstrably caught query work (the beacons
  // are only interesting while morsels run, so keep feeding it).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string stacks;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_FALSE(engine.Run(q1).rows.empty());
    stacks = engine.CollapsedStacks();
    if (stacks.find(";q1;") != std::string::npos) break;
  }
  EXPECT_NE(stacks.find(";q1;"), std::string::npos) << stacks;
  EXPECT_GT(engine.ObservabilitySnapshot().counter("profiler.samples"), 0u);
  int64_t hz = -1;
  for (const auto& [name, value] :
       engine.ObservabilitySnapshot().gauges) {
    if (name == "profiler.hz") hz = value;
  }
  EXPECT_EQ(hz, 4000);
  // ResetObservabilityStats drops the folded samples too.
  engine.ResetObservabilityStats();
  EXPECT_EQ(engine.CollapsedStacks().find(";q1;"), std::string::npos);
}

// --- Stats server ----------------------------------------------------------

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ObsEngineTest, StatsServerServesMetricsTraceAndProfiles) {
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.stats_port = 0;  // ephemeral
  QueryEngine engine(&catalog(), engine_options);
  ASSERT_GT(engine.stats_port(), 0);

  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryRunOptions options;
  options.collect_profile = true;
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());

  const std::string metrics = HttpGet(engine.stats_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE aqe_engine_queries_completed counter\n"
                         "aqe_engine_queries_completed 1\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("aqe_engine_exec_latency_us_class0_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("aqe_cache_bytes "), std::string::npos);
  // Well over the 30-series bar even on one query.
  size_t series = 0;
  for (size_t pos = metrics.find("# TYPE"); pos != std::string::npos;
       pos = metrics.find("# TYPE", pos + 1)) {
    ++series;
  }
  EXPECT_GE(series, 30u);

  const std::string trace = HttpGet(engine.stats_port(), "/trace.json");
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("{\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"morsel\""), std::string::npos);

  const std::string profiles = HttpGet(engine.stats_port(), "/profiles");
  EXPECT_NE(profiles.find("application/json"), std::string::npos);
  EXPECT_NE(profiles.find("\"profiles\":[{"), std::string::npos);
  EXPECT_NE(profiles.find("\"plan\":\"q6\""), std::string::npos);
  EXPECT_NE(profiles.find("\"anomalies\":[]"), std::string::npos);

  const std::string missing = HttpGet(engine.stats_port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
}

TEST_F(ObsEngineTest, StatsServerOffByDefault) {
  QueryEngine engine(&catalog(), 2);
  EXPECT_EQ(engine.stats_port(), -1);
}

}  // namespace
}  // namespace aqe
