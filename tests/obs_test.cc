#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "obs/tracer.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

TraceEvent MakeEvent(uint64_t seq) {
  TraceEvent e;
  e.start_nanos = static_cast<int64_t>(seq * 100);
  e.end_nanos = static_cast<int64_t>(seq * 100 + 50);
  e.payload = seq;
  e.query_id = static_cast<uint32_t>(seq % 7 + 1);
  e.kind = TraceEventKind::kMorsel;
  return e;
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, RetainsEventsInOrder) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) ring.Push(MakeEvent(i));
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(events[i].payload, i);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDrops) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 100; ++i) ring.Push(MakeEvent(i));
  EXPECT_EQ(ring.recorded(), 100u);
  EXPECT_EQ(ring.dropped(), 92u);
  std::vector<TraceEvent> events = ring.Snapshot();
  // Once wrapped, one slot is always reserved against a push the producer
  // might have in flight (it would alias the oldest retained seq), so a
  // snapshot returns the newest capacity-1 events, oldest first.
  ASSERT_EQ(events.size(), 7u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].payload, 93 + i);
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(9);
  EXPECT_EQ(ring.capacity(), 16u);
  TraceRing tiny(1);
  EXPECT_EQ(tiny.capacity(), 8u);  // minimum
}

TEST(TraceRingTest, ClearRestartsTheRing) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) ring.Push(MakeEvent(i));
  ring.Clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Push(MakeEvent(7));
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].payload, 7u);
}

/// One producer hammers the ring while a reader snapshots concurrently —
/// the TSan matrix in CI runs this test; every snapshot must hold
/// internally consistent (non-torn) events.
TEST(TraceRingTest, ConcurrentSnapshotSeesNoTornEvents) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TraceEvent e;
      // Self-checking event: fields derive from one counter.
      e.start_nanos = static_cast<int64_t>(i);
      e.end_nanos = static_cast<int64_t>(i + 1);
      e.payload = i;
      e.payload2 = ~i;
      e.query_id = static_cast<uint32_t>(i & 0xFFFFFFFF);
      e.kind = TraceEventKind::kMorsel;
      ring.Push(e);
      ++i;
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  uint64_t snapshots = 0, seen = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<TraceEvent> events = ring.Snapshot();
    ++snapshots;
    seen += events.size();
    uint64_t prev = 0;
    bool first = true;
    for (const TraceEvent& e : events) {
      const uint64_t i = e.payload;
      ASSERT_EQ(e.payload2, ~i) << "torn event";
      ASSERT_EQ(e.start_nanos, static_cast<int64_t>(i));
      ASSERT_EQ(e.end_nanos, static_cast<int64_t>(i + 1));
      ASSERT_EQ(e.query_id, static_cast<uint32_t>(i & 0xFFFFFFFF));
      if (!first) ASSERT_EQ(i, prev + 1) << "events out of order";
      prev = i;
      first = false;
    }
  }
  stop.store(true);
  producer.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(seen, 0u);
}

// --- EngineTracer ----------------------------------------------------------

TEST(EngineTracerTest, LanesAllocateLazilyAndSnapshotSkipsEmpty) {
  EngineTracer tracer(/*ring_capacity=*/16);
  EXPECT_EQ(tracer.Snapshot().lanes.size(), 0u);
  tracer.Record(3, MakeEvent(1));
  tracer.Record(5, MakeEvent(2));
  tracer.Record(3, MakeEvent(3));
  TraceSnapshot snap = tracer.Snapshot();
  ASSERT_EQ(snap.lanes.size(), 2u);
  EXPECT_EQ(snap.lanes[0].lane, 3);
  EXPECT_EQ(snap.lanes[0].events.size(), 2u);
  EXPECT_EQ(snap.lanes[1].lane, 5);
  EXPECT_EQ(snap.lanes[1].events.size(), 1u);
  EXPECT_EQ(snap.total_recorded(), 3u);
  EXPECT_EQ(snap.total_dropped(), 0u);
  tracer.Reset();
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(EngineTracerTest, OutOfRangeLaneClampsInsteadOfCrashing) {
  EngineTracer tracer(16);
  tracer.Record(-1, MakeEvent(1));
  tracer.Record(EngineTracer::kMaxLanes + 10, MakeEvent(2));
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, SmallValuesMapToExactBuckets) {
  // Below 2^kSubBucketBits every value gets its own bucket.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int b = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(b), v);
    EXPECT_EQ(Histogram::BucketUpperBound(b), v + 1);
  }
}

TEST(HistogramTest, BucketBoundsBracketTheValue) {
  // Every probed value must land in [lower, upper) of its own bucket, and
  // bucket indices must be monotone in the value.
  int prev = -1;
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull,
                     1000ull, 4095ull, 4096ull, 1000000ull,
                     (1ull << 40) + 12345, ~0ull}) {
    const int b = Histogram::BucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kBuckets);
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << "value " << v;
    if (v != ~0ull) {
      EXPECT_GT(Histogram::BucketUpperBound(b), v) << "value " << v;
    }
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(HistogramTest, BucketWidthIsBoundedRelativeError) {
  // Log-linear design point: width(bucket)/lower(bucket) <= 1/kSubBuckets
  // for all octave buckets, so percentiles interpolate within ~12.5%.
  for (uint64_t v = Histogram::kSubBuckets; v < (1ull << 30);
       v = v * 2 + v / 3 + 1) {
    const int b = Histogram::BucketIndex(v);
    const double lower = static_cast<double>(Histogram::BucketLowerBound(b));
    const double width =
        static_cast<double>(Histogram::BucketUpperBound(b)) - lower;
    EXPECT_LE(width / lower, 1.0 / Histogram::kSubBuckets + 1e-9)
        << "value " << v;
  }
}

TEST(HistogramTest, SnapshotPercentilesAndReset) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Uniform 1..1000: percentiles land within one bucket width (12.5%).
  EXPECT_NEAR(s.p50, 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.p95, 950.0, 950.0 * 0.13);
  EXPECT_NEAR(s.p99, 990.0, 990.0 * 0.13);
  // Percentiles never exceed the observed max.
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0.0);
}

TEST(HistogramTest, SingleValuePercentilesClampToMax) {
  Histogram h;
  h.Record(1000000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_LE(s.p50, 1000000.0);
  EXPECT_LE(s.p99, 1000000.0);
  EXPECT_GE(s.p50, 1000000.0 * (1.0 - 1.0 / Histogram::kSubBuckets));
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  Gauge* g = reg.GetGauge("test.gauge");
  Histogram* h = reg.GetHistogram("test.histo");
  EXPECT_EQ(reg.GetCounter("test.counter"), c);  // stable pointers
  c->Add(41);
  c->Add();
  g->Set(-5);
  h->Record(100);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 42u);
  EXPECT_EQ(snap.counter("test.missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  const HistogramSnapshot* hs = snap.histogram("test.histo");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
  EXPECT_EQ(snap.histogram("test.missing"), nullptr);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"test.histo\""), std::string::npos);

  // Reset zeroes counters and histograms but keeps gauges (current state).
  reg.Reset();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 0u);
  EXPECT_EQ(snap.histogram("test.histo")->count, 0u);
  EXPECT_EQ(snap.gauges[0].second, -5);
}

// --- Engine integration ----------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  static Catalog& catalog() {
    static Catalog* c = [] {
      auto* catalog = new Catalog();
      tpch::BuildTpchDatabase(catalog, /*sf=*/0.01);
      return catalog;
    }();
    return *c;
  }
};

TEST_F(ObsEngineTest, SnapshotReportsPerClassHistogramsAndCounters) {
  QueryEngine engine(&catalog(), /*num_threads=*/2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.query_class = 0;
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  options.query_class = 2;
  ASSERT_FALSE(engine.Run(q1, options).rows.empty());

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("engine.queries_submitted"), 2u);
  EXPECT_EQ(snap.counter("engine.queries_completed"), 2u);
  EXPECT_GT(snap.counter("exec.morsels"), 0u);
  EXPECT_GT(snap.counter("sched.executed_slices"), 0u);
  EXPECT_GT(snap.counter("sched.class_slices.class0"), 0u);
  EXPECT_GT(snap.counter("sched.class_slices.class2"), 0u);
  EXPECT_GT(snap.counter("translator.programs"), 0u);
  EXPECT_GT(snap.counter("trace.recorded"), 0u);

  // Queue-wait and exec-latency histograms per scheduling class: exactly
  // one query each in classes 0 and 2, none elsewhere.
  for (int cls : {0, 2}) {
    const auto* wait = snap.histogram("admission.queue_wait_us.class" +
                                      std::to_string(cls));
    const auto* lat = snap.histogram("engine.exec_latency_us.class" +
                                     std::to_string(cls));
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(wait->count, 1u) << "class " << cls;
    EXPECT_EQ(lat->count, 1u) << "class " << cls;
    EXPECT_GT(lat->max, 0u) << "class " << cls;
  }
  for (int cls : {1, 3}) {
    EXPECT_EQ(snap.histogram("engine.exec_latency_us.class" +
                             std::to_string(cls))
                  ->count,
              0u);
  }

  // Cache counters fold in (one miss per pipeline on this cold engine).
  EXPECT_GT(snap.counter("cache.bytecode_misses"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"),
            engine.artifact_cache_stats().bytecode_misses);
}

TEST_F(ObsEngineTest, ResetObservabilityStatsZeroesEverything) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  ASSERT_GT(engine.ObservabilitySnapshot().counter("exec.morsels"), 0u);

  engine.ResetObservabilityStats();
  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("exec.morsels"), 0u);
  EXPECT_EQ(snap.counter("engine.queries_completed"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"), 0u);
  EXPECT_EQ(snap.counter("translator.programs"), 0u);
  EXPECT_EQ(snap.counter("trace.recorded"), 0u);
  EXPECT_EQ(snap.histogram("engine.exec_latency_us.class0")->count, 0u);
  // Residency gauges survive: the cache still holds the artifacts.
  int64_t entries = -1;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "cache.entries") entries = value;
  }
  EXPECT_GT(entries, 0);

  // The warm rerun now shows hits against clean counters.
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  snap = engine.ObservabilitySnapshot();
  EXPECT_GT(snap.counter("cache.bytecode_hits"), 0u);
  EXPECT_EQ(snap.counter("cache.bytecode_misses"), 0u);
}

TEST_F(ObsEngineTest, ArtifactCacheStatsDeltaAndReset) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  ASSERT_FALSE(engine.Run(q6).rows.empty());
  const ArtifactCacheStats cold = engine.artifact_cache_stats();
  EXPECT_GT(cold.bytecode_misses, 0u);

  ASSERT_FALSE(engine.Run(q6).rows.empty());
  const ArtifactCacheStats warm = engine.artifact_cache_stats() - cold;
  EXPECT_GT(warm.bytecode_hits, 0u);
  EXPECT_EQ(warm.bytecode_misses, 0u);
  EXPECT_EQ(warm.entry_misses, 0u);
  // bytes/entries keep the current residency, not a delta.
  EXPECT_GT(warm.entries, 0u);
}

TEST_F(ObsEngineTest, VmOpcodeCountersAppearWhileProfiling) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  engine.set_vm_opcode_profiling(true);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;  // stay interpreted
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  engine.set_vm_opcode_profiling(false);

  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  uint64_t vm_ops = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("vm.op.", 0) == 0) vm_ops += value;
  }
  EXPECT_GT(vm_ops, 0u) << "no vm.op.* counters in the snapshot";

  VmResetProfileCounts();
  EXPECT_TRUE(VmProfileCounts().empty());
}

TEST_F(ObsEngineTest, ChromeTraceExportIsWellFormedForAdaptiveRun) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;
  options.adaptive_first_eval_seconds = 1e-6;  // force early mode decisions
  ASSERT_FALSE(engine.Run(q6, options).rows.empty());
  ASSERT_FALSE(engine.Run(q1, options).rows.empty());

  const std::string json = engine.ExportChromeTrace();
  // Golden structure: the stable skeleton every viewer needs. Event
  // counts and timestamps vary run to run; the shape must not.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"slice\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"admission-wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos);
  // Per-query flows: both queries start and finish.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy without a JSON
  // parser; CI's check_trace.py does the full parse).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);

  // The text renderer subsumes the old TraceRecorder::Render format.
  const std::string text = engine.RenderTrace(/*width=*/80);
  EXPECT_NE(text.find("time ->"), std::string::npos);
  EXPECT_NE(text.find("thread 0 |"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST_F(ObsEngineTest, ConcurrentQueriesRecordSafely) {
  // Concurrent Submit stress under the obs layer: the TSan CI matrix runs
  // this test to prove slices/morsels/histograms record race-free.
  QueryEngine engine(&catalog(), 2);
  QueryProgram q6 = BuildTpchQuery(6, catalog());
  constexpr int kClients = 4, kPerClient = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRunOptions options;
        options.query_class = c % kNumTaskClasses;
        if (engine.Run(q6, options).rows.empty()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  MetricsSnapshot snap = engine.ObservabilitySnapshot();
  EXPECT_EQ(snap.counter("engine.queries_completed"),
            static_cast<uint64_t>(kClients * kPerClient));
  const std::string json = engine.ExportChromeTrace();
  EXPECT_NE(json.find("\"name\":\"slice\""), std::string::npos);
}

}  // namespace
}  // namespace aqe
