#ifndef AQE_TESTS_IR_TEST_UTIL_H_
#define AQE_TESTS_IR_TEST_UTIL_H_

#include <string>
#include <vector>

#include <llvm/IR/IRBuilder.h>

#include "ir/ir_module.h"

namespace aqe::testutil {

/// Builds a function with the requested number of empty basic blocks (plus
/// entry). Callers wire the control flow and then call Finish... Small
/// helper so CFG-shape tests stay readable.
struct CfgBuilder {
  explicit CfgBuilder(int num_blocks, const char* name = "f")
      : mod("test"), builder(mod.context()) {
    auto* fty = llvm::FunctionType::get(
        llvm::Type::getInt64Ty(mod.context()),
        {llvm::Type::getInt64Ty(mod.context())}, false);
    fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, name,
                                &mod.module());
    for (int i = 0; i < num_blocks; ++i) {
      blocks.push_back(
          llvm::BasicBlock::Create(mod.context(), "b" + std::to_string(i), fn));
    }
  }

  /// Unconditional branch from -> to.
  void Br(int from, int to) {
    builder.SetInsertPoint(blocks[static_cast<size_t>(from)]);
    builder.CreateBr(blocks[static_cast<size_t>(to)]);
  }

  /// Conditional branch on (arg != 0).
  void CondBr(int from, int then_block, int else_block) {
    builder.SetInsertPoint(blocks[static_cast<size_t>(from)]);
    llvm::Value* cond = builder.CreateICmpNE(
        fn->getArg(0), builder.getInt64(0), "cond");
    builder.CreateCondBr(cond, blocks[static_cast<size_t>(then_block)],
                         blocks[static_cast<size_t>(else_block)]);
  }

  /// Return the function argument from `from`.
  void Ret(int from) {
    builder.SetInsertPoint(blocks[static_cast<size_t>(from)]);
    builder.CreateRet(fn->getArg(0));
  }

  IrModule mod;
  llvm::IRBuilder<> builder;
  llvm::Function* fn = nullptr;
  std::vector<llvm::BasicBlock*> blocks;
};

}  // namespace aqe::testutil

#endif  // AQE_TESTS_IR_TEST_UTIL_H_
