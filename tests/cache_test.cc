#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "cache/fingerprint.h"
#include "engine/query_engine.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"

namespace aqe {
namespace {

/// All cache tests share one SF-0.01 TPC-H database; engines are created
/// per test so every test sees a cold cache with deterministic counters.
class CacheTest : public ::testing::Test {
 protected:
  static Catalog& catalog() {
    static Catalog* c = [] {
      auto* catalog = new Catalog();
      tpch::BuildTpchDatabase(catalog, /*sf=*/0.01);
      return catalog;
    }();
    return *c;
  }

  /// Reference rows with the artifact cache bypassed.
  static std::vector<std::vector<int64_t>> Uncached(
      QueryEngine* engine, const QueryProgram& q,
      ExecutionStrategy strategy = ExecutionStrategy::kBytecode) {
    QueryRunOptions options;
    options.strategy = strategy;
    options.use_artifact_cache = false;
    return engine->Run(q, options).rows;
  }

  /// The publish path is a low-priority scheduler task; wait for it.
  static bool WaitForPublishes(QueryEngine* engine, uint64_t n) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (engine->artifact_cache_stats().publishes < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  static TpchQ6Literals VariantLiterals() {
    TpchQ6Literals lit = DefaultQ6Literals();
    lit.ship_date_lo += 31;
    lit.ship_date_hi += 61;
    lit.discount_lo = 4;
    lit.discount_hi = 8;
    lit.quantity_limit = 3000;
    return lit;
  }
};

// --- fingerprinting ---------------------------------------------------------

TEST_F(CacheTest, RebuiltPlansFingerprintEqual) {
  for (int number : ImplementedTpchQueries()) {
    QueryProgram a = BuildTpchQuery(number, catalog());
    QueryProgram b = BuildTpchQuery(number, catalog());
    PlanFingerprint fa = FingerprintProgram(a);
    PlanFingerprint fb = FingerprintProgram(b);
    EXPECT_EQ(fa.structural_hash, fb.structural_hash) << "q" << number;
    EXPECT_EQ(fa.constants, fb.constants) << "q" << number;
    EXPECT_EQ(fa.pipeline_constants, fb.pipeline_constants) << "q" << number;
  }
}

TEST_F(CacheTest, LiteralVariantsShareStructuralHash) {
  QueryProgram standard = BuildTpchQuery(6, catalog());
  QueryProgram variant = BuildTpchQ6Variant(catalog(), VariantLiterals());
  PlanFingerprint fs = FingerprintProgram(standard);
  PlanFingerprint fv = FingerprintProgram(variant);
  EXPECT_EQ(fs.structural_hash, fv.structural_hash);
  EXPECT_NE(fs.constants, fv.constants);
  EXPECT_EQ(fs.constants.size(), fv.constants.size());
}

TEST_F(CacheTest, StructurallyDifferentPlansCollideFree) {
  std::set<uint64_t> hashes;
  for (int number : ImplementedTpchQueries()) {
    QueryProgram q = BuildTpchQuery(number, catalog());
    uint64_t h = FingerprintProgram(q).structural_hash;
    EXPECT_TRUE(hashes.insert(h).second)
        << "q" << number << " collides with an earlier query";
  }
  EXPECT_EQ(hashes.size(), ImplementedTpchQueries().size());
}

// --- end-to-end reuse -------------------------------------------------------

TEST_F(CacheTest, WarmRunSkipsTranslation) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q = BuildTpchQuery(6, catalog());
  auto reference = Uncached(&engine, q);

  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;

  QueryProgram cold_q = BuildTpchQuery(6, catalog());
  QueryRunResult cold = engine.Run(cold_q, options);
  EXPECT_EQ(cold.rows, reference);
  EXPECT_GT(cold.translate_millis_total, 0);
  EXPECT_FALSE(cold.pipelines[0].artifact_cache_hit);

  QueryProgram warm_q = BuildTpchQuery(6, catalog());
  QueryRunResult warm = engine.Run(warm_q, options);
  EXPECT_EQ(warm.rows, reference);
  EXPECT_EQ(warm.translate_millis_total, 0);
  EXPECT_EQ(warm.codegen_millis_total, 0);
  EXPECT_TRUE(warm.pipelines[0].artifact_cache_hit);
  EXPECT_GT(warm.exec_seconds_total, 0);

  ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_GE(stats.entry_hits, 1u);
  EXPECT_GE(stats.bytecode_hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // The entry records what the plan achieved (observed morsel stats).
  auto entry = engine.artifact_cache().Peek(
      ArtifactCacheKey(FingerprintProgram(q), options.translator));
  ASSERT_NE(entry, nullptr);
  std::lock_guard<std::mutex> lock(entry->mu);
  EXPECT_EQ(entry->pipelines[0].observed_tuples, warm.pipelines[0].tuples);
  EXPECT_GT(entry->pipelines[0].observed_seconds, 0);
  EXPECT_EQ(entry->pipelines[0].best_mode, ExecMode::kBytecode);
}

TEST_F(CacheTest, AdaptiveSeedsBestCachedMode) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q = BuildTpchQuery(6, catalog());
  auto reference = Uncached(&engine, q);

  // Force the adaptive controller to reach optimized code on the cold run:
  // free compilation with a huge modeled speedup.
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;
  options.single_threaded = true;
  options.adaptive_first_eval_seconds = 0;
  options.cost_model.unopt_base_seconds = 0;
  options.cost_model.unopt_per_instruction_seconds = 0;
  options.cost_model.opt_base_seconds = 0;
  options.cost_model.opt_per_instruction_seconds = 0;
  options.cost_model.unopt_speedup = 1.01;
  options.cost_model.opt_speedup = 100.0;

  QueryProgram cold_q = BuildTpchQuery(6, catalog());
  QueryRunResult cold = engine.Run(cold_q, options);
  EXPECT_EQ(cold.rows, reference);
  EXPECT_EQ(cold.pipelines[0].initial_mode, ExecMode::kBytecode);
  ASSERT_FALSE(cold.pipelines[0].compiles.empty());
  // Bytecode insert + compiled-code publish.
  ASSERT_TRUE(WaitForPublishes(&engine, 2));

  QueryProgram warm_q = BuildTpchQuery(6, catalog());
  QueryRunResult warm = engine.Run(warm_q, options);
  EXPECT_EQ(warm.rows, reference);
  // The acceptance shape: no translation, first morsel already runs the
  // best mode the plan ever reached, no recompilation.
  EXPECT_EQ(warm.translate_millis_total, 0);
  EXPECT_EQ(warm.pipelines[0].initial_mode, ExecMode::kOptimized);
  EXPECT_EQ(warm.pipelines[0].final_mode, ExecMode::kOptimized);
  EXPECT_TRUE(warm.pipelines[0].compiles.empty());
  EXPECT_GE(engine.artifact_cache_stats().code_hits, 1u);
}

TEST_F(CacheTest, LiteralVariantPatchesBytecode) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram variant_ref = BuildTpchQ6Variant(catalog(), VariantLiterals());
  auto reference = Uncached(&engine, variant_ref);

  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;

  QueryProgram standard = BuildTpchQuery(6, catalog());
  engine.Run(standard, options);

  QueryProgram variant = BuildTpchQ6Variant(catalog(), VariantLiterals());
  QueryRunResult warm = engine.Run(variant, options);
  EXPECT_EQ(warm.rows, reference);
  EXPECT_EQ(warm.translate_millis_total, 0);
  EXPECT_TRUE(warm.pipelines[0].artifact_cache_hit);

  ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_GE(stats.patched_hits, 1u)
      << "Q6 literal variant should reuse bytecode via the patch table";
  // Different results prove the patched constants are live, not stale: the
  // relaxed variant filter must see at least the standard revenue.
  auto standard_rows = Uncached(&engine, standard);
  EXPECT_NE(warm.rows, standard_rows);
}

TEST_F(CacheTest, CachedStaticModesSkipCompilation) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram q = BuildTpchQuery(6, catalog());
  auto reference = Uncached(&engine, q, ExecutionStrategy::kOptimized);

  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kOptimized;
  QueryProgram cold_q = BuildTpchQuery(6, catalog());
  QueryRunResult cold = engine.Run(cold_q, options);
  EXPECT_EQ(cold.rows, reference);
  EXPECT_GT(cold.compile_millis_total, 0);
  ASSERT_TRUE(WaitForPublishes(&engine, 1));

  QueryProgram warm_q = BuildTpchQuery(6, catalog());
  QueryRunResult warm = engine.Run(warm_q, options);
  EXPECT_EQ(warm.rows, reference);
  EXPECT_EQ(warm.compile_millis_total, 0);
  EXPECT_EQ(warm.codegen_millis_total, 0);
  EXPECT_EQ(warm.pipelines[0].initial_mode, ExecMode::kOptimized);
}

TEST_F(CacheTest, CodeVariantsCoexistPerConstantVector) {
  QueryEngine engine(&catalog(), 2);
  QueryProgram standard_ref = BuildTpchQuery(6, catalog());
  QueryProgram variant_ref = BuildTpchQ6Variant(catalog(), VariantLiterals());
  auto standard_rows =
      Uncached(&engine, standard_ref, ExecutionStrategy::kOptimized);
  auto variant_rows =
      Uncached(&engine, variant_ref, ExecutionStrategy::kOptimized);
  ASSERT_NE(standard_rows, variant_rows);

  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kOptimized;
  engine.Run(BuildTpchQuery(6, catalog()), options);
  ASSERT_TRUE(WaitForPublishes(&engine, 1));
  engine.Run(BuildTpchQ6Variant(catalog(), VariantLiterals()), options);
  ASSERT_TRUE(WaitForPublishes(&engine, 2));

  // Machine code for both literal vectors is now resident side by side, so
  // re-running either compiles nothing. (With a single code slot per
  // pipeline, the variant's publish would have evicted the standard
  // constants' code and the first re-run below would recompile.)
  QueryRunResult warm_std = engine.Run(BuildTpchQuery(6, catalog()), options);
  EXPECT_EQ(warm_std.rows, standard_rows);
  EXPECT_EQ(warm_std.compile_millis_total, 0);
  QueryRunResult warm_var =
      engine.Run(BuildTpchQ6Variant(catalog(), VariantLiterals()), options);
  EXPECT_EQ(warm_var.rows, variant_rows);
  EXPECT_EQ(warm_var.compile_millis_total, 0);
  EXPECT_GE(engine.artifact_cache_stats().code_hits, 2u);

  // The per-entry variant map stays bounded under many distinct literals.
  for (int i = 0; i < 8; ++i) {
    TpchQ6Literals lit = DefaultQ6Literals();
    lit.quantity_limit = 400 + i;
    engine.Run(BuildTpchQ6Variant(catalog(), lit), options);
  }
  auto entry = engine.artifact_cache().Peek(
      ArtifactCacheKey(FingerprintProgram(standard_ref), options.translator));
  ASSERT_NE(entry, nullptr);
  std::lock_guard<std::mutex> lock(entry->mu);
  for (const PipelineArtifact& a : entry->pipelines) {
    EXPECT_LE(a.code_variants.size(), PipelineArtifact::kMaxCodeVariants);
  }
}

// --- eviction ---------------------------------------------------------------

TEST_F(CacheTest, EvictionUnderByteBudget) {
  QueryEngine engine(&catalog(), 2);
  engine.set_artifact_cache_byte_budget(1);  // every shard evicts to 1 entry
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;

  for (int number : ImplementedTpchQueries()) {
    QueryProgram q = BuildTpchQuery(number, catalog());
    QueryRunResult r = engine.Run(q, options);
    EXPECT_FALSE(r.rows.empty()) << "q" << number;
  }
  ArtifactCacheStats stats = engine.artifact_cache_stats();
  // 13 plans into 8 shards with a ~0 budget: evictions must have happened
  // and at most one entry per shard can remain.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 8u);

  // An evicted plan misses again but still runs correctly.
  QueryProgram q1 = BuildTpchQuery(1, catalog());
  auto reference = Uncached(&engine, q1);
  QueryProgram q1_again = BuildTpchQuery(1, catalog());
  EXPECT_EQ(engine.Run(q1_again, options).rows, reference);
}

TEST_F(CacheTest, ShrinkingBudgetEvictsResidentEntries) {
  QueryEngine engine(&catalog(), 2);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  const size_t plans = ImplementedTpchQueries().size();
  for (int number : ImplementedTpchQueries()) {
    QueryProgram q = BuildTpchQuery(number, catalog());
    engine.Run(q, options);
  }
  EXPECT_EQ(engine.artifact_cache_stats().entries, plans);
  // 13 plans in 8 shards: after shrinking, each shard keeps only its most
  // recent entry, so at least plans - 8 evictions must happen.
  engine.set_artifact_cache_byte_budget(1);
  ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_GE(stats.evictions, plans - 8);
  EXPECT_LE(stats.entries, 8u);
}

// --- concurrency ------------------------------------------------------------

/// Concurrent clients share one engine with a budget small enough that
/// entries are continuously evicted while sibling queries execute them
/// (shared_ptr ownership is what keeps this safe); literal variants force
/// the patch path, adaptive switches force publish-vs-hit races. Run under
/// TSan in CI.
TEST_F(CacheTest, ConcurrentHitPublishEvictStress) {
  QueryEngine engine(&catalog(), 3);
  engine.set_artifact_cache_byte_budget(1 << 16);  // a few entries at most

  QueryProgram ref_q6 = BuildTpchQuery(6, catalog());
  QueryProgram ref_var = BuildTpchQ6Variant(catalog(), VariantLiterals());
  QueryProgram ref_q1 = BuildTpchQuery(1, catalog());
  auto rows_q6 = Uncached(&engine, ref_q6);
  auto rows_var = Uncached(&engine, ref_var);
  auto rows_q1 = Uncached(&engine, ref_q1);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int pick = (t + i) % 3;
        QueryProgram q = pick == 0 ? BuildTpchQuery(6, catalog())
                         : pick == 1
                             ? BuildTpchQ6Variant(catalog(), VariantLiterals())
                             : BuildTpchQuery(1, catalog());
        QueryRunOptions options;
        options.strategy = ExecutionStrategy::kAdaptive;
        // Cheap modeled compilation: frequent mode switches and publishes.
        options.adaptive_first_eval_seconds = 0;
        options.cost_model.unopt_base_seconds = 0;
        options.cost_model.unopt_per_instruction_seconds = 0;
        options.cost_model.opt_base_seconds = 0;
        options.cost_model.opt_per_instruction_seconds = 0;
        options.cost_model.opt_speedup = 100.0;
        QueryRunResult r = engine.Run(q, options);
        const auto& expect =
            pick == 0 ? rows_q6 : pick == 1 ? rows_var : rows_q1;
        if (r.rows != expect) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_GT(stats.entry_hits + stats.entry_misses, 0u);
  EXPECT_GT(stats.publishes, 0u);
}

}  // namespace
}  // namespace aqe
