#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

#include "runtime/agg_hash_table.h"
#include "runtime/join_hash_table.h"
#include "runtime/output_buffer.h"
#include "runtime/runtime_functions.h"
#include "runtime/runtime_registry.h"
#include "runtime/sorter.h"

namespace aqe {
namespace {

TEST(JoinHashTableTest, InsertAndLookup) {
  JoinHashTable ht(100, /*payload_slots=*/2);
  auto* p1 = static_cast<int64_t*>(ht.Insert(42));
  p1[0] = 7;
  p1[1] = 8;
  auto* p2 = static_cast<int64_t*>(ht.Insert(43));
  p2[0] = 9;
  EXPECT_EQ(ht.size(), 2u);

  void* node = ht.Lookup(42);
  ASSERT_NE(node, nullptr);
  auto* payload = reinterpret_cast<int64_t*>(static_cast<uint8_t*>(node) + 16);
  EXPECT_EQ(payload[0], 7);
  EXPECT_EQ(payload[1], 8);
  EXPECT_EQ(JoinHashTable::Next(node, 42), nullptr);
  EXPECT_EQ(ht.Lookup(99), nullptr);
}

TEST(JoinHashTableTest, DuplicateKeysChain) {
  JoinHashTable ht(16, 1);
  for (int64_t i = 0; i < 5; ++i) {
    static_cast<int64_t*>(ht.Insert(7))[0] = i;
  }
  std::multiset<int64_t> seen;
  for (void* node = ht.Lookup(7); node != nullptr;
       node = JoinHashTable::Next(node, 7)) {
    seen.insert(*reinterpret_cast<int64_t*>(
        static_cast<uint8_t*>(node) + 16));
  }
  EXPECT_EQ(seen, (std::multiset<int64_t>{0, 1, 2, 3, 4}));
}

TEST(JoinHashTableTest, ManyKeysNoLoss) {
  JoinHashTable ht(1 << 12, 1);
  for (int64_t i = 0; i < 5000; ++i) {
    static_cast<int64_t*>(ht.Insert(i))[0] = i * 3;
  }
  for (int64_t i = 0; i < 5000; ++i) {
    void* node = ht.Lookup(i);
    ASSERT_NE(node, nullptr) << i;
    EXPECT_EQ(*reinterpret_cast<int64_t*>(static_cast<uint8_t*>(node) + 16),
              i * 3);
  }
}

TEST(JoinHashTableTest, ConcurrentInserts) {
  JoinHashTable ht(1 << 12, 1);
  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ht, t] {
      runtime_internal::SetThreadIndex(t);
      for (int64_t i = 0; i < kPerThread; ++i) {
        static_cast<int64_t*>(ht.Insert(t * kPerThread + i))[0] = i;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ht.size(), static_cast<uint64_t>(kThreads * kPerThread));
  for (int64_t k = 0; k < kThreads * kPerThread; ++k) {
    EXPECT_NE(ht.Lookup(k), nullptr) << k;
  }
}

TEST(JoinHashTableTest, ForEachVisitsAll) {
  JoinHashTable ht(64, 1);
  for (int64_t i = 0; i < 100; ++i) ht.Insert(i);
  int count = 0;
  int64_t key_sum = 0;
  ht.ForEach([&](int64_t key, void*) {
    ++count;
    key_sum += key;
  });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(key_sum, 99 * 100 / 2);
}

TEST(AggHashTableTest, FindOrInsertInitializes) {
  AggHashTable ht(2, {0, INT64_MAX});
  auto* p = static_cast<int64_t*>(ht.FindOrInsert(5));
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[1], INT64_MAX);
  p[0] = 10;
  auto* q = static_cast<int64_t*>(ht.FindOrInsert(5));
  EXPECT_EQ(q, p);
  EXPECT_EQ(q[0], 10);
  EXPECT_EQ(ht.size(), 1u);
}

TEST(AggHashTableTest, GrowPreservesEntries) {
  AggHashTable ht(1, {0});
  for (int64_t k = 0; k < 1000; ++k) {
    *static_cast<int64_t*>(ht.FindOrInsert(k)) = k * k;
  }
  EXPECT_EQ(ht.size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k) {
    auto* p = static_cast<int64_t*>(ht.Find(k));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, k * k);
  }
  EXPECT_EQ(ht.Find(-1), nullptr);
}

TEST(AggHashTableTest, NegativeKeys) {
  AggHashTable ht(1, {0});
  *static_cast<int64_t*>(ht.FindOrInsert(-42)) = 1;
  ASSERT_NE(ht.Find(-42), nullptr);
  EXPECT_EQ(ht.Find(42), nullptr);
}

TEST(AggHashTableSetTest, PerThreadTablesAndMerge) {
  AggHashTableSet set(1, {0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&set, t] {
      runtime_internal::SetThreadIndex(t);
      AggHashTable* local = set.Local();
      for (int64_t k = 0; k < 10; ++k) {
        *static_cast<int64_t*>(local->FindOrInsert(k)) += t + 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.NonEmptyTables().size(), 3u);
  AggHashTable merged(1, {0});
  set.MergeInto(&merged, [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
  EXPECT_EQ(merged.size(), 10u);
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(*static_cast<int64_t*>(merged.Find(k)), 1 + 2 + 3);
  }
}

TEST(OutputBufferTest, CollectsRows) {
  OutputBuffer out(3);
  for (int64_t i = 0; i < 10; ++i) {
    int64_t* row = out.AllocRow();
    row[0] = i;
    row[1] = i * 2;
    row[2] = i * 3;
  }
  EXPECT_EQ(out.num_rows(), 10u);
  auto rows = out.Rows();
  ASSERT_EQ(rows.size(), 10u);
  std::sort(rows.begin(), rows.end());
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rows[static_cast<size_t>(i)],
              (std::vector<int64_t>{i, i * 2, i * 3}));
  }
}

TEST(OutputBufferTest, CrossesChunkBoundaries) {
  OutputBuffer out(1);
  for (int64_t i = 0; i < 3000; ++i) *out.AllocRow() = i;
  auto rows = out.Rows();
  ASSERT_EQ(rows.size(), 3000u);
  int64_t sum = 0;
  for (const auto& row : rows) sum += row[0];
  EXPECT_EQ(sum, 2999 * 3000 / 2);
}

TEST(OutputBufferTest, MultiThreaded) {
  OutputBuffer out(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&out, t] {
      runtime_internal::SetThreadIndex(t);
      for (int64_t i = 0; i < 500; ++i) *out.AllocRow() = t * 1000 + i;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(out.num_rows(), 2000u);
}

TEST(SorterTest, SortAscendingDescending) {
  std::vector<std::vector<int64_t>> rows = {{3, 1}, {1, 2}, {2, 3}};
  SortRows(&rows, {{0, false, false}});
  EXPECT_EQ(rows[0][0], 1);
  EXPECT_EQ(rows[2][0], 3);
  SortRows(&rows, {{0, true, false}});
  EXPECT_EQ(rows[0][0], 3);
}

TEST(SorterTest, SecondaryKeyAndStability) {
  std::vector<std::vector<int64_t>> rows = {{1, 9}, {1, 3}, {0, 5}};
  SortRows(&rows, {{0, false, false}, {1, false, false}});
  EXPECT_EQ(rows[0], (std::vector<int64_t>{0, 5}));
  EXPECT_EQ(rows[1], (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(rows[2], (std::vector<int64_t>{1, 9}));
}

TEST(SorterTest, DoubleKeys) {
  auto bits = [](double d) {
    int64_t b;
    std::memcpy(&b, &d, 8);
    return b;
  };
  std::vector<std::vector<int64_t>> rows = {{bits(2.5)}, {bits(-1.0)},
                                            {bits(0.25)}};
  SortRows(&rows, {{0, false, true}});
  double first;
  std::memcpy(&first, &rows[0][0], 8);
  EXPECT_DOUBLE_EQ(first, -1.0);
}

TEST(SorterTest, TopKTruncates) {
  std::vector<std::vector<int64_t>> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({i});
  TopK(&rows, {{0, true, false}}, 5);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0], 99);
  EXPECT_EQ(rows[4][0], 95);
}

TEST(RuntimeRegistryTest, BuiltinsRegistered) {
  RuntimeRegistry& reg = RuntimeRegistry::Global();
  ASSERT_NE(reg.Find("aqe_jht_insert"), nullptr);
  EXPECT_EQ(reg.Find("aqe_jht_insert")->num_args, 2);
  EXPECT_TRUE(reg.Find("aqe_jht_insert")->returns_value);
  ASSERT_NE(reg.Find("aqe_raise_overflow"), nullptr);
  EXPECT_FALSE(reg.Find("aqe_raise_overflow")->returns_value);
  EXPECT_EQ(reg.Find("not_a_function"), nullptr);
}

TEST(RuntimeRegistryTest, WrappersRoundTrip) {
  JoinHashTable ht(16, 1);
  uint64_t payload =
      rt::aqe_jht_insert(reinterpret_cast<uint64_t>(&ht), 123);
  *reinterpret_cast<int64_t*>(payload) = 55;
  uint64_t node = rt::aqe_jht_lookup(reinterpret_cast<uint64_t>(&ht), 123);
  ASSERT_NE(node, 0u);
  EXPECT_EQ(*reinterpret_cast<int64_t*>(node + 16), 55);
  EXPECT_EQ(rt::aqe_jht_next(node, 123), 0u);

  AggHashTableSet set(1, {7});
  uint64_t local = rt::aqe_agg_local(reinterpret_cast<uint64_t>(&set));
  uint64_t agg = rt::aqe_agg_find_or_insert(local, 9);
  EXPECT_EQ(*reinterpret_cast<int64_t*>(agg), 7);

  OutputBuffer out(2);
  uint64_t row = rt::aqe_out_alloc_row(reinterpret_cast<uint64_t>(&out));
  reinterpret_cast<int64_t*>(row)[0] = 1;
  EXPECT_EQ(out.num_rows(), 1u);
}

}  // namespace
}  // namespace aqe
