#include <gtest/gtest.h>

#include <llvm/IR/IRBuilder.h>

#include "analysis/cfg_analysis.h"
#include "analysis/liveness.h"
#include "ir/ir_module.h"
#include "ir/ir_stats.h"
#include "tests/ir_test_util.h"

namespace aqe {
namespace {

using testutil::CfgBuilder;

// --- RPO labeling -----------------------------------------------------------

TEST(CfgOrderTest, StraightLine) {
  CfgBuilder b(3);
  b.Br(0, 1);
  b.Br(1, 2);
  b.Ret(2);
  CfgAnalysis cfg(*b.fn);
  EXPECT_EQ(cfg.num_blocks(), 3);
  EXPECT_EQ(cfg.LabelOf(b.blocks[0]), 0);
  EXPECT_EQ(cfg.LabelOf(b.blocks[1]), 1);
  EXPECT_EQ(cfg.LabelOf(b.blocks[2]), 2);
}

TEST(CfgOrderTest, DiamondPlacesJoinLast) {
  // 0 -> {1,2} -> 3
  CfgBuilder b(4);
  b.CondBr(0, 1, 2);
  b.Br(1, 3);
  b.Br(2, 3);
  b.Ret(3);
  CfgAnalysis cfg(*b.fn);
  EXPECT_EQ(cfg.LabelOf(b.blocks[0]), 0);
  EXPECT_EQ(cfg.LabelOf(b.blocks[3]), 3);
  // Both arms come before the join.
  EXPECT_LT(cfg.LabelOf(b.blocks[1]), 3);
  EXPECT_LT(cfg.LabelOf(b.blocks[2]), 3);
}

TEST(CfgOrderTest, UnreachableBlockGetsMinusOne) {
  CfgBuilder b(3);
  b.Br(0, 2);
  b.Ret(1);  // unreachable
  b.Ret(2);
  CfgAnalysis cfg(*b.fn);
  EXPECT_EQ(cfg.num_blocks(), 2);
  EXPECT_EQ(cfg.LabelOf(b.blocks[1]), -1);
}

// --- Dominators --------------------------------------------------------------

TEST(DominatorTest, Diamond) {
  CfgBuilder b(4);
  b.CondBr(0, 1, 2);
  b.Br(1, 3);
  b.Br(2, 3);
  b.Ret(3);
  CfgAnalysis cfg(*b.fn);
  int l1 = cfg.LabelOf(b.blocks[1]);
  int l2 = cfg.LabelOf(b.blocks[2]);
  int l3 = cfg.LabelOf(b.blocks[3]);
  EXPECT_EQ(cfg.ImmediateDominator(0), -1);
  EXPECT_EQ(cfg.ImmediateDominator(l1), 0);
  EXPECT_EQ(cfg.ImmediateDominator(l2), 0);
  EXPECT_EQ(cfg.ImmediateDominator(l3), 0);  // join dominated by fork only
  EXPECT_TRUE(cfg.Dominates(0, l3));
  EXPECT_TRUE(cfg.Dominates(l3, l3));
  EXPECT_FALSE(cfg.Dominates(l1, l3));
  EXPECT_FALSE(cfg.Dominates(l1, l2));
}

TEST(DominatorTest, Chain) {
  CfgBuilder b(3);
  b.Br(0, 1);
  b.Br(1, 2);
  b.Ret(2);
  CfgAnalysis cfg(*b.fn);
  EXPECT_EQ(cfg.ImmediateDominator(1), 0);
  EXPECT_EQ(cfg.ImmediateDominator(2), 1);
  EXPECT_TRUE(cfg.Dominates(0, 2));
  EXPECT_TRUE(cfg.Dominates(1, 2));
  EXPECT_FALSE(cfg.Dominates(2, 1));
}

// --- Loops -------------------------------------------------------------------

TEST(LoopTest, PseudoLoopAlwaysPresent) {
  CfgBuilder b(1);
  b.Ret(0);
  CfgAnalysis cfg(*b.fn);
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_EQ(cfg.loops()[0].head, 0);
  EXPECT_EQ(cfg.loops()[0].last, 0);
  EXPECT_EQ(cfg.loops()[0].depth, 0);
  EXPECT_EQ(cfg.InnermostLoopOf(0), 0);
}

TEST(LoopTest, SimpleLoop) {
  // 0 -> 1 (head); 1 -> {2 (body), 3 (exit)}; 2 -> 1; 3 ret
  CfgBuilder b(4);
  b.Br(0, 1);
  b.CondBr(1, 2, 3);
  b.Br(2, 1);
  b.Ret(3);
  CfgAnalysis cfg(*b.fn);
  int head = cfg.LabelOf(b.blocks[1]);
  int body = cfg.LabelOf(b.blocks[2]);
  int exit = cfg.LabelOf(b.blocks[3]);
  EXPECT_TRUE(cfg.IsLoopHead(head));
  EXPECT_FALSE(cfg.IsLoopHead(body));
  ASSERT_EQ(cfg.loops().size(), 2u);
  const auto& loop = cfg.loops()[1];
  EXPECT_EQ(loop.head, head);
  EXPECT_EQ(loop.last, body);
  EXPECT_EQ(loop.depth, 1);
  EXPECT_EQ(cfg.InnermostLoopOf(body), 1);
  EXPECT_EQ(cfg.InnermostLoopOf(exit), 0);  // exit is outside the loop
}

TEST(LoopTest, NestedLoops) {
  // 0 -> 1(outer head) -> 2(inner head) -> 3(inner body) -> 2; 2 -> 4 -> 1;
  // 1 -> 5 exit
  CfgBuilder b(6);
  b.Br(0, 1);
  b.CondBr(1, 2, 5);
  b.CondBr(2, 3, 4);
  b.Br(3, 2);
  b.Br(4, 1);
  b.Ret(5);
  CfgAnalysis cfg(*b.fn);
  int outer_head = cfg.LabelOf(b.blocks[1]);
  int inner_head = cfg.LabelOf(b.blocks[2]);
  int inner_body = cfg.LabelOf(b.blocks[3]);
  int outer_tail = cfg.LabelOf(b.blocks[4]);
  EXPECT_TRUE(cfg.IsLoopHead(outer_head));
  EXPECT_TRUE(cfg.IsLoopHead(inner_head));
  ASSERT_EQ(cfg.loops().size(), 3u);
  int inner_loop = cfg.InnermostLoopOf(inner_body);
  int outer_loop = cfg.InnermostLoopOf(outer_tail);
  EXPECT_EQ(cfg.loops()[static_cast<size_t>(inner_loop)].depth, 2);
  EXPECT_EQ(cfg.loops()[static_cast<size_t>(outer_loop)].depth, 1);
  EXPECT_EQ(cfg.loops()[static_cast<size_t>(inner_loop)].parent, outer_loop);
  EXPECT_EQ(cfg.CommonLoop(inner_loop, outer_loop), outer_loop);
}

// --- Liveness (Fig 10/11) ----------------------------------------------------

TEST(LivenessTest, StraightLineRange) {
  CfgBuilder b(3);
  // v defined in block 0, used in block 2.
  b.builder.SetInsertPoint(b.blocks[0]);
  llvm::Value* v = b.builder.CreateAdd(b.fn->getArg(0), b.builder.getInt64(1), "v");
  b.builder.CreateBr(b.blocks[1]);
  b.Br(1, 2);
  b.builder.SetInsertPoint(b.blocks[2]);
  b.builder.CreateRet(v);
  CfgAnalysis cfg(*b.fn);
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  EXPECT_EQ(live.range(v).start, 0);
  EXPECT_EQ(live.range(v).end, 2);
}

TEST(LivenessTest, Fig10LoopExtension) {
  // Paper Fig 10: v defined in block 2, used in block 5 which sits in a loop
  // [3,6]; the lifetime must extend to [2,6].
  //
  //   0 -> 1 -> 2 -> 3(head) -> 4 -> 5 -> 6 -> 3 (back edge), 6 -> 7 ret
  CfgBuilder b(8);
  b.Br(0, 1);
  b.Br(1, 2);
  b.builder.SetInsertPoint(b.blocks[2]);
  llvm::Value* v =
      b.builder.CreateAdd(b.fn->getArg(0), b.builder.getInt64(7), "v");
  b.builder.CreateBr(b.blocks[3]);
  b.Br(3, 4);
  b.Br(4, 5);
  b.builder.SetInsertPoint(b.blocks[5]);
  llvm::Value* z = b.builder.CreateAdd(v, b.builder.getInt64(1), "z");
  (void)z;
  b.builder.CreateBr(b.blocks[6]);
  b.CondBr(6, 3, 7);
  b.Ret(7);
  CfgAnalysis cfg(*b.fn);
  // Sanity: block i gets label i in this topology.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(cfg.LabelOf(b.blocks[static_cast<size_t>(i)]), i);
  }
  ASSERT_TRUE(cfg.IsLoopHead(3));
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  EXPECT_EQ(live.range(v).start, 2);
  EXPECT_EQ(live.range(v).end, 6);  // extended to the loop's last block
  // z lives only within the loop blocks it touches.
  EXPECT_GE(live.range(z).start, 3);
  EXPECT_LE(live.range(z).end, 6);
}

TEST(LivenessTest, ValueLocalToLoopStaysLocal) {
  // A value defined and used inside one loop iteration must not leak out.
  CfgBuilder b(4);
  b.Br(0, 1);
  b.builder.SetInsertPoint(b.blocks[1]);
  llvm::Value* t = b.builder.CreateMul(b.fn->getArg(0), b.builder.getInt64(3), "t");
  llvm::Value* u = b.builder.CreateAdd(t, b.builder.getInt64(1), "u");
  llvm::Value* c = b.builder.CreateICmpSLT(u, b.builder.getInt64(100), "c");
  b.builder.CreateCondBr(c, b.blocks[1], b.blocks[2]);
  b.Br(2, 3);
  b.Ret(3);
  CfgAnalysis cfg(*b.fn);
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  int l1 = cfg.LabelOf(b.blocks[1]);
  EXPECT_EQ(live.range(t).start, l1);
  EXPECT_EQ(live.range(t).end, l1);
}

TEST(LivenessTest, PhiOperandReadAtEndOfIncomingBlock) {
  // 0: v0 = arg+1, br 1
  // 1: phi [v0 from 0], [v1 from 2]; cond -> 2 or 3
  // 2: v1 = phi * 2, br 1
  // 3: ret phi
  CfgBuilder b(4);
  auto& ib = b.builder;
  ib.SetInsertPoint(b.blocks[0]);
  llvm::Value* v0 = ib.CreateAdd(b.fn->getArg(0), ib.getInt64(1), "v0");
  ib.CreateBr(b.blocks[1]);
  ib.SetInsertPoint(b.blocks[1]);
  llvm::PHINode* phi = ib.CreatePHI(ib.getInt64Ty(), 2, "phi");
  llvm::Value* c = ib.CreateICmpSLT(phi, ib.getInt64(100), "c");
  ib.CreateCondBr(c, b.blocks[2], b.blocks[3]);
  ib.SetInsertPoint(b.blocks[2]);
  llvm::Value* v1 = ib.CreateMul(phi, ib.getInt64(2), "v1");
  ib.CreateBr(b.blocks[1]);
  ib.SetInsertPoint(b.blocks[3]);
  ib.CreateRet(phi);
  phi->addIncoming(v0, b.blocks[0]);
  phi->addIncoming(v1, b.blocks[2]);

  CfgAnalysis cfg(*b.fn);
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  int l0 = cfg.LabelOf(b.blocks[0]);
  int l1 = cfg.LabelOf(b.blocks[1]);
  int l2 = cfg.LabelOf(b.blocks[2]);
  int l3 = cfg.LabelOf(b.blocks[3]);
  // v0 is read at the end of block 0 (its incoming edge) and dies there:
  // the phi's own register carries the value onward (paper §IV-D phi rule).
  EXPECT_EQ(live.range(v0).start, l0);
  EXPECT_EQ(live.range(v0).end, l0);
  // Likewise v1 is defined in 2 and read at the end of 2.
  EXPECT_EQ(live.range(v1).start, l2);
  EXPECT_EQ(live.range(v1).end, l2);
  // The phi is written at the end of each incoming block (0 and 2) and read
  // in its own block and in block 3: its range spans everything.
  EXPECT_LE(live.range(phi).start, l0);
  EXPECT_GE(live.range(phi).end, l3);
  EXPECT_GE(live.range(phi).end, l1);
}

TEST(LivenessTest, ArgumentsStartInEntry) {
  CfgBuilder b(2);
  b.Br(0, 1);
  b.builder.SetInsertPoint(b.blocks[1]);
  b.builder.CreateRet(b.fn->getArg(0));
  CfgAnalysis cfg(*b.fn);
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  const llvm::Value* arg = b.fn->getArg(0);
  EXPECT_EQ(live.range(arg).start, 0);
  EXPECT_EQ(live.range(arg).end, 1);
}

TEST(LivenessTest, AllInstructionsTracked) {
  CfgBuilder b(2);
  b.builder.SetInsertPoint(b.blocks[0]);
  llvm::Value* v = b.builder.CreateAdd(b.fn->getArg(0), b.builder.getInt64(1));
  b.builder.CreateBr(b.blocks[1]);
  b.builder.SetInsertPoint(b.blocks[1]);
  b.builder.CreateRet(v);
  CfgAnalysis cfg(*b.fn);
  LivenessInfo live = ComputeLiveness(*b.fn, cfg);
  // arg + add tracked; br/ret produce no values.
  EXPECT_EQ(live.values().size(), 2u);
  EXPECT_TRUE(live.tracked(v));
  EXPECT_FALSE(live.tracked(b.blocks[0]->getTerminator()));
}

// --- IR stats ---------------------------------------------------------------

TEST(IrStatsTest, CountsInstructions) {
  CfgBuilder b(2);
  b.builder.SetInsertPoint(b.blocks[0]);
  llvm::Value* v = b.builder.CreateAdd(b.fn->getArg(0), b.builder.getInt64(1));
  b.builder.CreateBr(b.blocks[1]);
  b.builder.SetInsertPoint(b.blocks[1]);
  b.builder.CreateRet(v);
  IrFunctionStats stats = ComputeFunctionStats(*b.fn);
  EXPECT_EQ(stats.instructions, 3u);  // add, br, ret
  EXPECT_EQ(stats.basic_blocks, 2u);
  EXPECT_EQ(stats.calls, 0u);
  EXPECT_EQ(CountModuleInstructions(b.mod.module()), 3u);
}

TEST(IrModuleTest, VerifyCleanModule) {
  CfgBuilder b(1);
  b.Ret(0);
  EXPECT_EQ(b.mod.Verify(), "");
  EXPECT_NE(b.mod.Print().find("define"), std::string::npos);
}

}  // namespace
}  // namespace aqe
