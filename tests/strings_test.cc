// String predicate subsystem tests (src/strings/): the LIKE pattern
// compiler against a reference matcher, the dictionary's order-preserving
// invariant and bitmap pre-evaluation, the runtime-call path, the lowering
// decision rule, end-to-end differential execution across every engine and
// dispatch mode (including the string edge cases: empty pattern, bare '%',
// '_'-only, absent code), pattern-variant artifact sharing, and the
// runtime-call-density cost-model hook. Runs under ASan and TSan in CI
// (the concurrent-submission test is the TSan surface).
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "adaptive/cost_model.h"
#include "cache/fingerprint.h"
#include "engine/query_engine.h"
#include "queries/tpch_queries.h"
#include "runtime/runtime_functions.h"
#include "storage/table.h"
#include "strings/like_lowering.h"
#include "strings/like_pattern.h"
#include "strings/string_predicate.h"
#include "tpch/tpch_gen.h"

namespace aqe {
namespace {

// ============================================================================
// Pattern compiler
// ============================================================================

/// Reference LIKE semantics: naive recursive backtracking. The compiled
/// matcher must agree with this on every input.
bool ReferenceLike(std::string_view pattern, std::string_view s) {
  if (pattern.empty()) return s.empty();
  if (pattern[0] == '%') {
    for (size_t skip = 0; skip <= s.size(); ++skip) {
      if (ReferenceLike(pattern.substr(1), s.substr(skip))) return true;
    }
    return false;
  }
  if (s.empty()) return false;
  if (pattern[0] != '_' && pattern[0] != s[0]) return false;
  return ReferenceLike(pattern.substr(1), s.substr(1));
}

TEST(LikeMatcherTest, Classification) {
  EXPECT_EQ(LikeMatcher::Compile("").pattern_class(),
            LikePatternClass::kEquality);
  EXPECT_EQ(LikeMatcher::Compile("abc").pattern_class(),
            LikePatternClass::kEquality);
  EXPECT_EQ(LikeMatcher::Compile("%").pattern_class(),
            LikePatternClass::kMatchAll);
  EXPECT_EQ(LikeMatcher::Compile("%%%").pattern_class(),
            LikePatternClass::kMatchAll);
  EXPECT_EQ(LikeMatcher::Compile("abc%").pattern_class(),
            LikePatternClass::kPrefix);
  EXPECT_EQ(LikeMatcher::Compile("%abc").pattern_class(),
            LikePatternClass::kSuffix);
  EXPECT_EQ(LikeMatcher::Compile("%abc%").pattern_class(),
            LikePatternClass::kContains);
  EXPECT_EQ(LikeMatcher::Compile("a%b").pattern_class(),
            LikePatternClass::kGeneral);
  EXPECT_EQ(LikeMatcher::Compile("___").pattern_class(),
            LikePatternClass::kGeneral);
  EXPECT_EQ(LikeMatcher::Compile("a_c%").pattern_class(),
            LikePatternClass::kGeneral);
  EXPECT_EQ(LikeMatcher::Compile("%a%b%").pattern_class(),
            LikePatternClass::kGeneral);
}

TEST(LikeMatcherTest, EdgeCases) {
  EXPECT_TRUE(LikeMatcher::Compile("").Matches(""));
  EXPECT_FALSE(LikeMatcher::Compile("").Matches("x"));
  EXPECT_TRUE(LikeMatcher::Compile("%").Matches(""));
  EXPECT_TRUE(LikeMatcher::Compile("%").Matches("anything"));
  EXPECT_TRUE(LikeMatcher::Compile("___").Matches("abc"));
  EXPECT_FALSE(LikeMatcher::Compile("___").Matches("ab"));
  EXPECT_FALSE(LikeMatcher::Compile("___").Matches("abcd"));
  EXPECT_TRUE(LikeMatcher::Compile("%%a%%").Matches("xax"));
  EXPECT_TRUE(LikeMatcher::Compile("a%a").Matches("aa"));
  EXPECT_FALSE(LikeMatcher::Compile("a%a").Matches("a"));  // no overlap
  EXPECT_TRUE(LikeMatcher::Compile("%special%requests%")
                  .Matches("the special pending requests sleep"));
  EXPECT_FALSE(LikeMatcher::Compile("%special%requests%")
                   .Matches("the requests were special"));  // order matters
}

TEST(LikeMatcherTest, DifferentialAgainstReference) {
  // Random patterns and subjects over a tiny alphabet so wildcards and
  // literals collide often.
  std::mt19937_64 rng(7);
  const char alphabet[] = {'a', 'b', 'c', '_', '%'};
  const char subject_alphabet[] = {'a', 'b', 'c'};
  for (int iter = 0; iter < 3000; ++iter) {
    std::string pattern;
    const size_t plen = rng() % 8;
    for (size_t i = 0; i < plen; ++i) pattern += alphabet[rng() % 5];
    LikeMatcher matcher = LikeMatcher::Compile(pattern);
    std::string s;
    const size_t slen = rng() % 10;
    for (size_t i = 0; i < slen; ++i) s += subject_alphabet[rng() % 3];
    EXPECT_EQ(matcher.Matches(s), ReferenceLike(pattern, s))
        << "pattern='" << pattern << "' s='" << s << "' class="
        << LikePatternClassName(matcher.pattern_class());
  }
}

TEST(LikeMatcherTest, LongSegmentsUseFallback) {
  // Segments beyond the 64-bit shift-or state fall back to the naive scan;
  // semantics must not change.
  const std::string long_lit(80, 'a');
  const std::string pattern = "%" + long_lit + "_z%";
  LikeMatcher m = LikeMatcher::Compile(pattern);
  EXPECT_EQ(m.pattern_class(), LikePatternClass::kGeneral);
  EXPECT_TRUE(m.Matches("xx" + long_lit + "qz" + "yy"));
  EXPECT_FALSE(m.Matches("xx" + long_lit.substr(1) + "qz"));
  EXPECT_EQ(m.Matches(long_lit + "zz"),
            ReferenceLike(pattern, long_lit + "zz"));
}

// ============================================================================
// Dictionary: bitmap pre-evaluation and the order-preserving invariant
// ============================================================================

Dictionary SmallDict() {
  Dictionary d;
  for (const char* s : {"PROMO ANODIZED TIN", "STANDARD PLATED BRASS",
                        "PROMO BRUSHED COPPER", "ECONOMY POLISHED STEEL",
                        "", "PROMO", "MEDIUM POLISHED NICKEL"}) {
    d.GetOrAdd(s);
  }
  return d;
}

TEST(DictionaryStringsTest, MatchBitmapAgreesWithScalarMatcher) {
  Dictionary d = SmallDict();
  for (const char* pattern :
       {"PROMO%", "%POLISHED%", "%TIN", "", "%", "P_OMO%", "%S_EEL",
        "MEDIUM POLISHED NICKEL", "missing"}) {
    LikeMatcher matcher = LikeMatcher::Compile(pattern);
    std::vector<uint8_t> bitmap = BuildLikeBitmap(d, matcher);
    ASSERT_EQ(bitmap.size(), static_cast<size_t>(d.size()));
    for (int32_t code = 0; code < d.size(); ++code) {
      EXPECT_EQ(bitmap[static_cast<size_t>(code)] != 0,
                matcher.Matches(d.Get(code)))
          << "pattern='" << pattern << "' string='" << d.Get(code) << "'";
    }
  }
}

TEST(DictionaryStringsTest, SortCodesEstablishesOrderInvariant) {
  Dictionary d = SmallDict();
  EXPECT_FALSE(d.is_sorted());
  // Remember the decoding before the sort.
  std::vector<std::string> before;
  for (int32_t c = 0; c < d.size(); ++c) before.push_back(d.Get(c));
  const std::vector<int32_t> remap = d.SortCodes();
  EXPECT_TRUE(d.is_sorted());
  for (int32_t old_code = 0; old_code < d.size(); ++old_code) {
    // Same string, new position; Find agrees with the rebuilt index.
    EXPECT_EQ(d.Get(remap[static_cast<size_t>(old_code)]),
              before[static_cast<size_t>(old_code)]);
    EXPECT_EQ(d.Find(before[static_cast<size_t>(old_code)]),
              remap[static_cast<size_t>(old_code)]);
  }
  // The invariant itself: code order == lexicographic order.
  for (int32_t c = 1; c < d.size(); ++c) {
    EXPECT_LT(d.Get(c - 1), d.Get(c));
  }
}

TEST(DictionaryStringsTest, TableSortRewritesCodesConsistently) {
  Table t("t");
  int sc = t.AddColumn("s", DataType::kI32, /*dictionary=*/true);
  Dictionary& d = t.dictionary(sc);
  std::vector<std::string> rows = {"delta", "alpha", "delta", "charlie",
                                   "bravo", "alpha"};
  for (const std::string& s : rows) t.column(sc).AppendI32(d.GetOrAdd(s));
  t.SortDictionaries();
  EXPECT_TRUE(t.dictionary(sc).is_sorted());
  for (uint64_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(t.dictionary(sc).Get(t.column(sc).GetI32(r)), rows[r]);
  }
}

TEST(DictionaryStringsTest, PrefixRangeMatchesBitmapOnSortedDict) {
  Dictionary d = SmallDict();
  d.SortCodes();
  for (const char* prefix : {"PROMO", "", "MEDIUM ", "Z", "P"}) {
    const auto [lo, hi] = d.PrefixRange(prefix);
    std::vector<uint8_t> bitmap = d.MatchPrefix(prefix);
    for (int32_t c = 0; c < d.size(); ++c) {
      EXPECT_EQ(c >= lo && c < hi, bitmap[static_cast<size_t>(c)] != 0)
          << "prefix='" << prefix << "' code=" << c;
    }
  }
}

TEST(DictionaryStringsTest, TpchDictionariesAreOrderPreserving) {
  Catalog catalog;
  tpch::BuildTpchDatabase(&catalog, /*sf=*/0.001);
  for (const char* name : {"region", "nation", "customer", "part", "orders",
                           "lineitem"}) {
    const Table* t = catalog.GetTable(name);
    for (int c = 0; c < t->num_columns(); ++c) {
      if (!t->has_dictionary(c)) continue;
      EXPECT_TRUE(t->dictionary(c).is_sorted())
          << name << "." << t->column(c).name();
      // And every stored code still decodes (remap covered all rows).
      for (uint64_t r = 0; r < std::min<uint64_t>(t->num_rows(), 64); ++r) {
        const int32_t code = t->column(c).GetI32(r);
        ASSERT_GE(code, 0);
        ASSERT_LT(code, t->dictionary(c).size());
      }
    }
  }
}

// ============================================================================
// Runtime function: the per-row call path
// ============================================================================

TEST(LikeRuntimeTest, AbsentAndOutOfRangeCodesNeverMatch) {
  Dictionary d = SmallDict();
  LikePredicate pred{LikeMatcher::Compile("%"), &d};
  const uint64_t p = reinterpret_cast<uint64_t>(&pred);
  EXPECT_EQ(rt::aqe_like_match(p, 0), 1u);
  EXPECT_EQ(rt::aqe_like_match(p, static_cast<uint64_t>(d.size() - 1)), 1u);
  // Out of range in both directions: no crash, no match.
  EXPECT_EQ(rt::aqe_like_match(p, static_cast<uint64_t>(-1)), 0u);
  EXPECT_EQ(rt::aqe_like_match(p, static_cast<uint64_t>(d.size())), 0u);
  EXPECT_EQ(rt::aqe_like_match(p, 1u << 20), 0u);
}

// ============================================================================
// Lowering: strategy decisions
// ============================================================================

/// A synthetic dictionary table: `distinct` distinct strings cycled over
/// `rows` rows, plus an empty string at code 0's row set.
struct SyntheticTable {
  Catalog catalog;
  Table* table = nullptr;
  int id_col = 0;
  int s_col = 0;

  SyntheticTable(uint64_t rows, uint64_t distinct, bool sorted = true) {
    table = catalog.CreateTable("t");
    id_col = table->AddColumn("id", DataType::kI64);
    s_col = table->AddColumn("s", DataType::kI32, /*dictionary=*/true);
    Dictionary& d = table->dictionary(s_col);
    std::vector<int32_t> codes;
    for (uint64_t i = 0; i < distinct; ++i) {
      codes.push_back(d.GetOrAdd(MakeString(i)));
    }
    for (uint64_t r = 0; r < rows; ++r) {
      table->column(id_col).AppendI64(static_cast<int64_t>(r));
      table->column(s_col).AppendI32(codes[r % distinct]);
    }
    if (sorted) table->SortDictionaries();
  }

  static std::string MakeString(uint64_t i) {
    if (i == 0) return "";  // the empty-string edge case lives in the data
    static const char* kWords[] = {"special", "requests", "pending",
                                   "ironic", "express"};
    std::string s = kWords[i % 5];
    s += ' ';
    s += kWords[(i / 5) % 5];
    s += '#';
    s += std::to_string(i);
    return s;
  }
};

TEST(LikeLoweringTest, EqualityLowersToCodeCompare) {
  SyntheticTable st(100, 10);
  QueryProgram q("t");
  LoweredLike lowered = LowerLikePredicate(
      &q, *st.table, st.s_col, 0, SyntheticTable::MakeString(3));
  EXPECT_EQ(lowered.pattern_class, LikePatternClass::kEquality);
  EXPECT_FALSE(lowered.used_bitmap);
  EXPECT_FALSE(lowered.used_runtime_call);
  ASSERT_EQ(lowered.expr->kind, ExprKind::kEq);
  // Absent literal: same structure, impossible code.
  LoweredLike absent =
      LowerLikePredicate(&q, *st.table, st.s_col, 0, "no such string");
  ASSERT_EQ(absent.expr->kind, ExprKind::kEq);
  EXPECT_EQ(absent.expr->children[1]->i64_value, -1);
}

TEST(LikeLoweringTest, PrefixOnSortedDictLowersToRangeCompare) {
  SyntheticTable st(100, 10);
  QueryProgram q("t");
  LoweredLike lowered =
      LowerLikePredicate(&q, *st.table, st.s_col, 0, "special%");
  EXPECT_EQ(lowered.pattern_class, LikePatternClass::kPrefix);
  EXPECT_FALSE(lowered.used_bitmap);
  EXPECT_FALSE(lowered.used_runtime_call);
  ASSERT_EQ(lowered.expr->kind, ExprKind::kAnd);
}

TEST(LikeLoweringTest, AutoPicksBitmapForSmallDictAndCallForLarge) {
  // 8 distinct strings over 1000 rows: pre-evaluation amortizes.
  SyntheticTable small(1000, 8);
  QueryProgram q_small("t");
  LoweredLike b = LowerLikePredicate(&q_small, *small.table, small.s_col, 0,
                                     "%requests%");
  EXPECT_TRUE(b.used_bitmap);
  EXPECT_EQ(q_small.bitmaps().size(), 1u);

  // Every row distinct: pre-evaluating per distinct string would cost as
  // much as the scan — runtime-call path.
  SyntheticTable large(256, 256);
  QueryProgram q_large("t");
  LoweredLike c = LowerLikePredicate(&q_large, *large.table, large.s_col, 0,
                                     "%requests%");
  EXPECT_TRUE(c.used_runtime_call);
  EXPECT_EQ(q_large.like_predicates().size(), 1u);
  ASSERT_EQ(c.expr->kind, ExprKind::kLike);
}

TEST(LikeLoweringTest, CostModelDiscountsCallHeavyPipelines) {
  // The runtime-call-density hook: a call-free pipeline compiles, a
  // call-dominated one stays interpreted under identical rates.
  CostModelParams params;
  const double r0 = 1e6;
  // Short enough that compile cost must be earned back by real speedup: a
  // call-bound pipeline's ~2% effective gain cannot pay for it.
  const uint64_t remaining = 150'000;
  Decision call_free = ExtrapolatePipelineDurations(
      r0, remaining, 1, 200, ExecMode::kBytecode, params, 0.0);
  EXPECT_NE(call_free, Decision::kDoNothing);
  Decision call_bound = ExtrapolatePipelineDurations(
      r0, remaining, 1, 200, ExecMode::kBytecode, params, 0.97);
  EXPECT_EQ(call_bound, Decision::kDoNothing);
  // Effective speedup degrades monotonically toward 1.
  EXPECT_DOUBLE_EQ(CostModelParams::EffectiveSpeedup(3.5, 0.0), 3.5);
  EXPECT_LT(CostModelParams::EffectiveSpeedup(3.5, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(CostModelParams::EffectiveSpeedup(3.5, 1.0), 1.0);
  EXPECT_EQ(RuntimeCallFraction(100, 0, params), 0.0);
  EXPECT_GT(RuntimeCallFraction(100, 5, params), 0.3);
}

// ============================================================================
// End-to-end differential across engines
// ============================================================================

class LikeEndToEndTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 4000;
  static constexpr uint64_t kDistinct = 40;

  static void SetUpTestSuite() {
    table_ = new SyntheticTable(kRows, kDistinct);
    engine_ = new QueryEngine(&table_->catalog, /*num_threads=*/2);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete table_;
  }

  /// Builds: SELECT id, s FROM t WHERE s LIKE pattern, rows sorted.
  static QueryProgram BuildLikeQuery(const std::string& pattern,
                                     LikeStrategy strategy) {
    QueryProgram q("like_query");
    int t = q.DeclareBaseTable("t");
    LikeLoweringOptions options;
    options.strategy = strategy;
    LoweredLike lowered = LowerLikePredicate(&q, *table_->table,
                                             table_->s_col, /*code_slot=*/1,
                                             pattern, options);
    int output = q.DeclareOutput(2);
    PipelineSpec p;
    p.name = "scan t";
    p.source_table = t;
    p.scan_columns = {table_->id_col, table_->s_col};
    p.ops.push_back(OpFilter{std::move(lowered.expr)});
    SinkOutput sink;
    sink.output = output;
    sink.values.push_back(Slot(0));
    sink.values.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
    q.AddStep([output](QueryContext* ctx) {
      ctx->result = ctx->outputs[static_cast<size_t>(output)]->Rows();
      std::sort(ctx->result.begin(), ctx->result.end());
    });
    return q;
  }

  static SyntheticTable* table_;
  static QueryEngine* engine_;
};

SyntheticTable* LikeEndToEndTest::table_ = nullptr;
QueryEngine* LikeEndToEndTest::engine_ = nullptr;

TEST_F(LikeEndToEndTest, AllEnginesAgreeOnEveryPatternAndStrategy) {
  const std::vector<std::string> patterns = {
      "",                                   // empty pattern
      "%",                                  // bare %
      "________",                           // '_'-only
      SyntheticTable::MakeString(7),        // equality, present
      "absent string",                      // equality, absent code
      "special%",                           // prefix (range compare)
      "%#17",                               // suffix
      "%requests%",                         // contains
      "%special%requests%",                 // general multi-segment
      "_pecial%#2_",                        // general with '_'
  };
  struct Config {
    EngineKind engine;
    ExecutionStrategy strategy;
    VmDispatch vm_dispatch;
    const char* label;
  };
  const Config configs[] = {
      {EngineKind::kVectorized, ExecutionStrategy::kBytecode,
       VmDispatch::kDefault, "vectorized"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kSwitch, "vm-switch"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kThreaded, "vm-threaded"},
      {EngineKind::kCompiled, ExecutionStrategy::kUnoptimized,
       VmDispatch::kDefault, "jit-unopt"},
      {EngineKind::kCompiled, ExecutionStrategy::kOptimized,
       VmDispatch::kDefault, "jit-opt"},
      {EngineKind::kCompiled, ExecutionStrategy::kAdaptive,
       VmDispatch::kDefault, "adaptive"},
  };
  for (const std::string& pattern : patterns) {
    for (LikeStrategy strategy :
         {LikeStrategy::kAuto, LikeStrategy::kBitmap,
          LikeStrategy::kRuntimeCall}) {
      // Equality/prefix/match-all collapse to pure compares regardless of
      // strategy; the loop still exercises the request paths.
      QueryProgram ref_program = BuildLikeQuery(pattern, strategy);
      QueryRunOptions volcano;
      volcano.engine = EngineKind::kVolcano;
      auto reference = engine_->Run(ref_program, volcano).rows;
      for (const Config& config : configs) {
        QueryProgram program = BuildLikeQuery(pattern, strategy);
        QueryRunOptions options;
        options.engine = config.engine;
        options.strategy = config.strategy;
        options.vm_dispatch = config.vm_dispatch;
        auto rows = engine_->Run(program, options).rows;
        EXPECT_EQ(rows, reference)
            << config.label << " pattern='" << pattern << "' strategy="
            << static_cast<int>(strategy);
      }
    }
  }
}

TEST_F(LikeEndToEndTest, PatternVariantsShareStructureAndArtifacts) {
  // Two runtime-call plans differing only in the pattern: identical
  // structural hash, different extracted string literals — and the second
  // run reuses the first's bytecode as-is (the matcher arrives through the
  // binding array, no patching needed).
  QueryProgram a = BuildLikeQuery("%special%requests%",
                                  LikeStrategy::kRuntimeCall);
  QueryProgram b = BuildLikeQuery("%ironic%express%",
                                  LikeStrategy::kRuntimeCall);
  PlanFingerprint fa = FingerprintProgram(a);
  PlanFingerprint fb = FingerprintProgram(b);
  EXPECT_EQ(fa.structural_hash, fb.structural_hash);
  EXPECT_EQ(fa.constants, fb.constants);
  ASSERT_EQ(fa.string_literals.size(), 1u);
  ASSERT_EQ(fb.string_literals.size(), 1u);
  EXPECT_NE(fa.string_literals[0], fb.string_literals[0]);

  QueryEngine engine(&table_->catalog, 2);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  engine.Run(a, options);
  const uint64_t misses_after_a = engine.artifact_cache_stats().bytecode_misses;
  engine.Run(b, options);
  const ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_EQ(stats.bytecode_misses, misses_after_a);  // b translated nothing
  EXPECT_GT(stats.bytecode_hits, 0u);
}

TEST_F(LikeEndToEndTest, Q14PatternVariantsShareFingerprint) {
  Catalog catalog;
  tpch::BuildTpchDatabase(&catalog, /*sf=*/0.001);
  QueryProgram standard = BuildTpchQuery(14, catalog);
  QueryProgram variant = BuildTpchQ14Variant(catalog, "SMALL%");
  EXPECT_EQ(FingerprintProgram(standard).structural_hash,
            FingerprintProgram(variant).structural_hash);

  // And the variant patch-shares the cached bytecode (range literals are
  // plain constants).
  QueryEngine engine(&catalog, 2);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  auto r1 = engine.Run(standard, options);
  ASSERT_FALSE(r1.rows.empty());
  QueryProgram variant2 = BuildTpchQ14Variant(catalog, "SMALL%");
  auto r2 = engine.Run(variant2, options);
  ASSERT_FALSE(r2.rows.empty());
  const ArtifactCacheStats stats = engine.artifact_cache_stats();
  EXPECT_GT(stats.bytecode_hits + stats.patched_hits, 0u);
}

TEST_F(LikeEndToEndTest, AdmissionCostFeedbackConverges) {
  QueryEngine engine(&table_->catalog, 2);
  QueryRunOptions options;
  for (int i = 0; i < 3; ++i) {
    QueryProgram q = BuildLikeQuery("special%", LikeStrategy::kAuto);
    engine.Run(q, options);
  }
  // Every completed run feeds the plan's service-time EWMA.
  EXPECT_GE(engine.artifact_cache_stats().cost_feedback_updates, 3u);
}

TEST_F(LikeEndToEndTest, ConcurrentSubmissionsAreRaceFree) {
  // TSan surface: concurrent clients submitting bitmap- and call-path LIKE
  // queries against one engine (shared artifact cache entries, EWMA
  // updates, binding arrays).
  QueryEngine engine(&table_->catalog, 2);
  constexpr int kClients = 4;
  constexpr int kRuns = 6;
  QueryRunOptions ref_options;
  ref_options.engine = EngineKind::kVolcano;
  QueryProgram ref = BuildLikeQuery("%requests%", LikeStrategy::kAuto);
  const auto reference = engine.Run(ref, ref_options).rows;

  std::vector<std::future<bool>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&engine, c,
                                                      &reference] {
      const LikeStrategy strategy =
          c % 2 == 0 ? LikeStrategy::kBitmap : LikeStrategy::kRuntimeCall;
      for (int i = 0; i < kRuns; ++i) {
        QueryProgram q = BuildLikeQuery("%requests%", strategy);
        QueryRunOptions options;
        options.strategy = i % 2 == 0 ? ExecutionStrategy::kBytecode
                                      : ExecutionStrategy::kAdaptive;
        if (engine.Run(q, options).rows != reference) return false;
      }
      return true;
    }));
  }
  for (auto& client : clients) EXPECT_TRUE(client.get());
}

}  // namespace
}  // namespace aqe
