#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "exec/morsel.h"
#include "index/access_path.h"
#include "index/dict_index.h"
#include "index/table_index.h"
#include "index/text_index.h"
#include "index/zone_map.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "storage/table.h"
#include "strings/like_lowering.h"
#include "strings/like_pattern.h"

namespace aqe {
namespace {

// ============================================================================
// ScanDomain + morsel queues over a pruned domain
// ============================================================================

TEST(ScanDomainTest, MakeNormalizesRanges) {
  auto d = ScanDomain::Make(
      {{500, 700}, {100, 200}, {150, 300}, {300, 310}, {900, 900}, {950, 2000}},
      /*table_rows=*/1000);
  // {100,200}+{150,300}+{300,310} merge (overlap + adjacency), {900,900} is
  // empty, {950,2000} clamps to table_rows.
  ASSERT_EQ(d->ranges.size(), 3u);
  EXPECT_EQ(d->ranges[0].begin, 100u);
  EXPECT_EQ(d->ranges[0].end, 310u);
  EXPECT_EQ(d->ranges[1].begin, 500u);
  EXPECT_EQ(d->ranges[1].end, 700u);
  EXPECT_EQ(d->ranges[2].begin, 950u);
  EXPECT_EQ(d->ranges[2].end, 1000u);
  EXPECT_EQ(d->selected(), 210u + 200u + 50u);
  // Virtual -> range mapping at the boundaries.
  EXPECT_EQ(d->RangeIndexFor(0), 0u);
  EXPECT_EQ(d->RangeIndexFor(209), 0u);
  EXPECT_EQ(d->RangeIndexFor(210), 1u);
  EXPECT_EQ(d->RangeIndexFor(409), 1u);
  EXPECT_EQ(d->RangeIndexFor(410), 2u);
}

TEST(ScanDomainTest, EmptyDomainSelectsNothing) {
  auto d = ScanDomain::Make({}, 1000);
  EXPECT_EQ(d->selected(), 0u);
  MorselQueue queue(d, 0, 0);
  MorselRange m;
  EXPECT_FALSE(queue.Next(&m));
}

/// Claims every morsel and checks the union is exactly the domain: sorted,
/// gapless within ranges, never crossing a range boundary.
void DrainAndCheck(MorselQueue* queue, const ScanDomain& domain) {
  std::vector<MorselRange> claimed;
  MorselRange m;
  while (queue->Next(&m)) claimed.push_back(m);
  std::sort(claimed.begin(), claimed.end(),
            [](const MorselRange& a, const MorselRange& b) {
              return a.begin < b.begin;
            });
  size_t range = 0;
  uint64_t pos = domain.ranges.empty() ? 0 : domain.ranges[0].begin;
  uint64_t covered = 0;
  for (const MorselRange& c : claimed) {
    ASSERT_LT(range, domain.ranges.size());
    ASSERT_EQ(c.begin, pos);  // gapless, no overlap
    ASSERT_GT(c.end, c.begin);
    // Never spans past the containing range.
    ASSERT_LE(c.end, domain.ranges[range].end);
    covered += c.end - c.begin;
    pos = c.end;
    if (pos == domain.ranges[range].end && range + 1 < domain.ranges.size()) {
      ++range;
      pos = domain.ranges[range].begin;
    }
  }
  EXPECT_EQ(covered, domain.selected());
}

TEST(MorselQueueDomainTest, ClaimedMorselsCoverDomainExactly) {
  auto d = ScanDomain::Make({{100, 1500}, {3000, 3010}, {10000, 20000}},
                            /*table_rows=*/30000);
  MorselQueue queue(d, 0, d->selected(), /*initial_size=*/128,
                    /*max_size=*/1024, /*grow_every=*/4);
  DrainAndCheck(&queue, *d);
}

// Batch claims must cover a fragmented domain exactly once: every batch's
// ranges lie inside domain ranges, batches never overlap, rows sums match,
// and one claim packs several tiny fragments (the per-claim amortization
// the batch API exists for).
TEST(MorselQueueDomainTest, BatchClaimsCoverFragmentedDomainExactly) {
  // 200 islands of 3 rows every 50 rows: far smaller than the schedule.
  std::vector<MorselRange> islands;
  for (uint64_t i = 0; i < 200; ++i) {
    islands.push_back({i * 50, i * 50 + 3});
  }
  auto d = ScanDomain::Make(std::move(islands), /*table_rows=*/10000);
  ASSERT_EQ(d->selected(), 600u);
  MorselQueue queue(d, 0, d->selected(), /*initial_size=*/128);
  std::vector<char> seen(10000, 0);
  MorselBatch batch;
  int batches = 0;
  while (queue.Next(&batch)) {
    ++batches;
    ASSERT_GT(batch.count, 0);
    ASSERT_LE(batch.count, MorselBatch::kMaxRanges);
    uint64_t rows = 0;
    for (int i = 0; i < batch.count; ++i) {
      const MorselRange& r = batch.ranges[i];
      ASSERT_LT(r.begin, r.end);
      rows += r.end - r.begin;
      for (uint64_t row = r.begin; row < r.end; ++row) {
        ASSERT_EQ(seen[row], 0) << "row " << row << " claimed twice";
        seen[row] = 1;
        EXPECT_EQ(row % 50 < 3, true) << "row " << row << " outside domain";
      }
    }
    EXPECT_EQ(rows, batch.rows);
  }
  uint64_t covered = 0;
  for (char c : seen) covered += static_cast<uint64_t>(c);
  EXPECT_EQ(covered, d->selected());
  // 128-row schedule windows over 3-row islands clamped at kMaxRanges=32
  // ranges/batch: ~600/96 ≈ 7 batches, not 200 single-island claims.
  EXPECT_LE(batches, 20);
}

TEST(MorselQueueDomainTest, ShardedDomainCoversEverythingOnce) {
  auto d = ScanDomain::Make({{0, 100}, {5000, 5555}, {7000, 12000}},
                            /*table_rows=*/20000);
  ShardedMorselQueue queue(d, /*num_shards=*/4, /*initial_size=*/64);
  EXPECT_EQ(queue.total(), d->selected());
  std::vector<char> seen(20000, 0);
  MorselRange m;
  // Round-robin across shards (exercises stealing once shards drain).
  int shard = 0;
  while (queue.Next(shard, &m)) {
    for (uint64_t r = m.begin; r < m.end; ++r) {
      ASSERT_EQ(seen[r], 0) << "row " << r << " claimed twice";
      seen[r] = 1;
    }
    shard = (shard + 1) % 4;
  }
  uint64_t covered = 0;
  for (uint64_t r = 0; r < seen.size(); ++r) {
    if (!seen[r]) continue;
    ++covered;
    bool in_domain = false;
    for (const MorselRange& range : d->ranges) {
      in_domain |= r >= range.begin && r < range.end;
    }
    ASSERT_TRUE(in_domain) << "row " << r << " outside the domain";
  }
  EXPECT_EQ(covered, d->selected());
  EXPECT_EQ(queue.remaining(), 0u);
}

// ============================================================================
// Index structures
// ============================================================================

/// Synthetic table: `id` ascending (clustered), `val` = id % 1000
/// (uniform, unprunable), `s` a dictionary comment column where every
/// kSpecialStride-th row says "special requests pending" and the rest cycle
/// filler phrases. The stride exceeds AccessPathOptions::merge_gap_rows, so
/// candidate rows stay separate ranges instead of merging into one dense
/// scan (hits closer than the merge gap are *deliberately* not prunable).
struct IndexedTable {
  Catalog catalog;
  Table* table = nullptr;
  int id_col, val_col, s_col;
  static constexpr uint64_t kRows = 20000;
  static constexpr uint64_t kSpecialStride = 128;

  IndexedTable() {
    table = catalog.CreateTable("t");
    id_col = table->AddColumn("id", DataType::kI64);
    val_col = table->AddColumn("val", DataType::kI64);
    s_col = table->AddColumn("s", DataType::kI32, /*dictionary=*/true);
    Dictionary& d = table->dictionary(s_col);
    for (uint64_t i = 0; i < kRows; ++i) {
      table->column(id_col).AppendI64(static_cast<int64_t>(i));
      table->column(val_col).AppendI64(static_cast<int64_t>(i % 1000));
      table->column(s_col).AppendI32(d.GetOrAdd(MakeComment(i)));
    }
    table->SortDictionaries();
    TableIndexOptions options;
    options.text_columns = {"s"};
    AttachTableIndexes(table, std::move(options));
  }

  static std::string MakeComment(uint64_t i) {
    if (i % kSpecialStride == 0) {
      return "special requests pending #" + std::to_string(i);
    }
    static const char* kWords[] = {"carefully", "ironic", "deposits", "boost",
                                   "express", "accounts", "furiously"};
    std::string s = kWords[i % 7];
    s += ' ';
    s += kWords[(i / 7) % 7];
    s += " #";
    s += std::to_string(i % 400);
    return s;
  }
};

TEST(ZoneMapsTest, MinMaxTracksBlocksAndPresenceFindsCodes) {
  IndexedTable t;
  const TableIndexes& idx = *t.table->indexes();
  const ZoneMaps& zones = idx.zones;
  ASSERT_GT(zones.num_blocks(), 0u);
  const ZoneMaps::ColumnZones* id_zones = zones.ForColumn(t.id_col);
  ASSERT_NE(id_zones, nullptr);
  // id is ascending: block b covers [b * block_rows, ...).
  for (uint64_t b = 0; b < zones.num_blocks(); ++b) {
    EXPECT_EQ(id_zones->min[b],
              static_cast<int64_t>(b * zones.block_rows()));
    EXPECT_EQ(id_zones->max[b],
              static_cast<int64_t>(
                  std::min<uint64_t>(IndexedTable::kRows,
                                     (b + 1) * zones.block_rows()) - 1));
  }
  // Presence filter: every code stored in block 0 must test positive there.
  const ZoneMaps::ColumnZones* s_zones = zones.ForColumn(t.s_col);
  ASSERT_NE(s_zones, nullptr);
  ASSERT_TRUE(s_zones->has_presence);
  for (uint64_t r = 0; r < zones.block_rows(); ++r) {
    EXPECT_TRUE(ZoneMaps::PresenceMayContain(
        s_zones->presence.data(), t.table->column(t.s_col).GetI32(r)));
  }
}

TEST(DictCodeIndexTest, RowsGroupedByCodeAndCountsMatch) {
  IndexedTable t;
  const DictCodeIndex& csr = t.table->indexes()->dict_indexes.at(t.s_col);
  EXPECT_EQ(csr.rows(), IndexedTable::kRows);
  EXPECT_EQ(csr.num_codes(), t.table->dictionary(t.s_col).size());
  EXPECT_EQ(csr.CountForCodeRange(0, csr.num_codes()), IndexedTable::kRows);
  // Every row listed under a code actually stores that code, ascending.
  for (int32_t c = 0; c < csr.num_codes(); ++c) {
    const uint32_t* begin = csr.RowsBegin(c);
    const uint32_t* end = csr.RowsEnd(c);
    ASSERT_EQ(static_cast<uint64_t>(end - begin),
              csr.CountForCodeRange(c, c + 1));
    for (const uint32_t* p = begin; p != end; ++p) {
      ASSERT_EQ(t.table->column(t.s_col).GetI32(*p), c);
      if (p != begin) ASSERT_LT(*(p - 1), *p);
    }
  }
  // Out-of-range code ranges clamp instead of crashing.
  EXPECT_EQ(csr.CountForCodeRange(-5, 0), 0u);
  EXPECT_EQ(csr.CountForCodeRange(csr.num_codes(), csr.num_codes() + 9), 0u);
}

TEST(TokenIndexTest, PatternPartsSplitsAtWildcardsAndShortParts) {
  const auto parts = TokenIndex::PatternParts("%special requests%");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "special");
  EXPECT_EQ(parts[1], "requests");
  // '_' splits chunks; 1-byte sub-parts are dropped.
  EXPECT_EQ(TokenIndex::PatternParts("a_b%").size(), 0u);
  EXPECT_EQ(TokenIndex::PatternParts("%%").size(), 0u);
  EXPECT_EQ(TokenIndex::PatternParts("ab_cd").size(), 2u);
}

TEST(TokenIndexTest, CandidateCodesAreASupersetOfMatches) {
  IndexedTable t;
  const Dictionary& dict = t.table->dictionary(t.s_col);
  const TokenIndex& tokens = t.table->indexes()->text_indexes.at(t.s_col);
  for (const char* pattern :
       {"%special requests%", "%ironic%express%", "%deposits%", "%#39%"}) {
    std::vector<int32_t> candidates;
    ASSERT_TRUE(tokens.CandidateCodes(pattern, &candidates)) << pattern;
    LikeMatcher matcher = LikeMatcher::Compile(pattern);
    for (int32_t c = 0; c < dict.size(); ++c) {
      if (matcher.Matches(dict.Get(c))) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), c))
            << "pattern '" << pattern << "' lost match '" << dict.Get(c)
            << "'";
      }
    }
  }
  // A pattern whose tokens exist nowhere: usable, empty candidates.
  std::vector<int32_t> none;
  ASSERT_TRUE(tokens.CandidateCodes("%zzyzzx qwqwq%", &none));
  EXPECT_TRUE(none.empty());
  // No usable sub-part: the index reports it cannot help.
  EXPECT_FALSE(tokens.CandidateCodes("%", &none));
  EXPECT_FALSE(tokens.CandidateCodes("_%_", &none));
}

// ============================================================================
// Access-path analysis
// ============================================================================

PipelineSpec RangeScanSpec(const IndexedTable& t, int64_t lo, int64_t hi) {
  PipelineSpec spec;
  spec.name = "scan t";
  spec.source_table = 0;
  spec.scan_columns = {t.id_col, t.val_col};
  spec.ops.push_back(
      OpFilter{And(Ge(Slot(0), I64(lo)), Lt(Slot(0), I64(hi)))});
  return spec;
}

TEST(AccessPathTest, ClusteredRangePrunesToMatchingBlocks) {
  IndexedTable t;
  PipelineSpec spec = RangeScanSpec(t, 5000, 6000);
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_TRUE(pruning.stats.analyzed);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.stats.primary_path, AccessPathKind::kZoneMap);
  EXPECT_GT(pruning.stats.zone_blocks_pruned, 0u);
  // Every matching row survives; the domain is block-aligned so it may
  // include a partial block on each side.
  for (const MorselRange& r : pruning.domain->ranges) {
    EXPECT_LT(r.begin, 6000u + 1024);
    EXPECT_GT(r.end, 5000u - 1024);
  }
  EXPECT_LE(pruning.domain->selected(), 1000u + 2 * 1024);
  uint64_t covered = 0;
  for (uint64_t row = 5000; row < 6000; ++row) {
    for (const MorselRange& r : pruning.domain->ranges) {
      if (row >= r.begin && row < r.end) {
        ++covered;
        break;
      }
    }
  }
  EXPECT_EQ(covered, 1000u);
}

TEST(AccessPathTest, UnprunableColumnKeepsFullScan) {
  IndexedTable t;
  PipelineSpec spec;
  spec.scan_columns = {t.val_col};
  spec.ops.push_back(OpFilter{Lt(Slot(0), I64(500))});
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_TRUE(pruning.stats.analyzed);
  // val = id % 1000: every block holds [0, 999], nothing prunes.
  EXPECT_EQ(pruning.domain, nullptr);
  EXPECT_EQ(pruning.stats.primary_path, AccessPathKind::kFullScan);
  EXPECT_EQ(pruning.stats.selected_rows, IndexedTable::kRows);
}

TEST(AccessPathTest, ImpossiblePredicatePrunesEverything) {
  IndexedTable t;
  PipelineSpec spec = RangeScanSpec(t, 10 * IndexedTable::kRows,
                                    20 * IndexedTable::kRows);
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.domain->selected(), 0u);
  EXPECT_EQ(pruning.stats.selected_rows, 0u);
  EXPECT_EQ(pruning.stats.zone_blocks_pruned,
            pruning.stats.zone_blocks_total);
}

TEST(AccessPathTest, AbsentDictCodeEqualityIsEmpty) {
  IndexedTable t;
  // Equality with an absent string lowers to `code == -1`; clamped against
  // the non-negative code space this is a contradiction.
  QueryProgram q("t");
  LoweredLike lowered = LowerLikePredicate(&q, *t.table, t.s_col,
                                           /*code_slot=*/0, "no such string");
  PipelineSpec spec;
  spec.scan_columns = {t.s_col};
  spec.ops.push_back(OpFilter{std::move(lowered.expr)});
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.domain->selected(), 0u);
}

TEST(AccessPathTest, TokenIndexServesSelectiveLike) {
  IndexedTable t;
  QueryProgram q("t");
  LikeLoweringOptions options;
  options.strategy = LikeStrategy::kIndex;
  LoweredLike lowered =
      LowerLikePredicate(&q, *t.table, t.s_col, /*code_slot=*/0,
                         "%special requests%", options);
  ASSERT_TRUE(lowered.used_runtime_call);
  EXPECT_TRUE(lowered.chose_index_path);
  EXPECT_NEAR(lowered.index_selectivity,
              1.0 / IndexedTable::kSpecialStride, 1e-3);
  PipelineSpec spec;
  spec.scan_columns = {t.s_col};
  spec.ops.push_back(OpFilter{std::move(lowered.expr)});
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_TRUE(pruning.stats.analyzed);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.stats.primary_path, AccessPathKind::kTextIndex);
  EXPECT_GT(pruning.stats.posting_entries, 0u);
  // 1-in-kSpecialStride rows match; the scheduled domain stays well under
  // a tenth of the table.
  EXPECT_GE(pruning.stats.candidate_rows,
            IndexedTable::kRows / IndexedTable::kSpecialStride);
  EXPECT_LT(pruning.domain->selected(), IndexedTable::kRows / 10);
}

TEST(AccessPathTest, EmptyPostingListPrunesEverything) {
  IndexedTable t;
  QueryProgram q("t");
  LikeLoweringOptions options;
  options.strategy = LikeStrategy::kIndex;
  LoweredLike lowered = LowerLikePredicate(&q, *t.table, t.s_col, 0,
                                           "%zzyzzx qwqwq%", options);
  PipelineSpec spec;
  spec.scan_columns = {t.s_col};
  spec.ops.push_back(OpFilter{std::move(lowered.expr)});
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.domain->selected(), 0u);
  EXPECT_EQ(pruning.stats.primary_path, AccessPathKind::kTextIndex);
}

TEST(AccessPathTest, BitmapPredicateUsesDictBitmapPath) {
  IndexedTable t;
  QueryProgram q("t");
  LikeLoweringOptions options;
  options.strategy = LikeStrategy::kBitmap;
  LoweredLike lowered =
      LowerLikePredicate(&q, *t.table, t.s_col, 0, "%special requests%",
                         options);
  ASSERT_TRUE(lowered.used_bitmap);
  PipelineSpec spec;
  spec.scan_columns = {t.s_col};
  spec.ops.push_back(OpFilter{std::move(lowered.expr)});
  ScanPruning pruning = AnalyzeScanPruning(spec, *t.table);
  ASSERT_NE(pruning.domain, nullptr);
  EXPECT_EQ(pruning.stats.primary_path, AccessPathKind::kDictBitmap);
  EXPECT_LT(pruning.domain->selected(), IndexedTable::kRows / 10);
}

// ============================================================================
// End-to-end differential: pruned plans equal full scans on every engine
// ============================================================================

class IndexEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new IndexedTable();
    engine_ = new QueryEngine(&table_->catalog, /*num_threads=*/2);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete table_;
  }

  /// SELECT id, val, s FROM t WHERE id in [lo, hi) AND s LIKE pattern
  /// (either predicate optional), rows sorted.
  static QueryProgram BuildQuery(int64_t lo, int64_t hi,
                                 const std::string& pattern,
                                 LikeStrategy strategy) {
    QueryProgram q("index_query");
    int t = q.DeclareBaseTable("t");
    ExprPtr pred;
    if (lo < hi) {
      pred = And(Ge(Slot(0), I64(lo)), Lt(Slot(0), I64(hi)));
    }
    if (!pattern.empty()) {
      LikeLoweringOptions options;
      options.strategy = strategy;
      LoweredLike lowered = LowerLikePredicate(
          &q, *table_->table, table_->s_col, /*code_slot=*/2, pattern,
          options);
      pred = pred ? And(std::move(pred), std::move(lowered.expr))
                  : std::move(lowered.expr);
    }
    int output = q.DeclareOutput(3);
    PipelineSpec p;
    p.name = "scan t";
    p.source_table = t;
    p.scan_columns = {table_->id_col, table_->val_col, table_->s_col};
    if (pred) p.ops.push_back(OpFilter{std::move(pred)});
    SinkOutput sink;
    sink.output = output;
    sink.values.push_back(Slot(0));
    sink.values.push_back(Slot(1));
    sink.values.push_back(Slot(2));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
    q.AddStep([output](QueryContext* ctx) {
      ctx->result = ctx->outputs[static_cast<size_t>(output)]->Rows();
      std::sort(ctx->result.begin(), ctx->result.end());
    });
    return q;
  }

  static IndexedTable* table_;
  static QueryEngine* engine_;
};

IndexedTable* IndexEndToEndTest::table_ = nullptr;
QueryEngine* IndexEndToEndTest::engine_ = nullptr;

TEST_F(IndexEndToEndTest, PrunedPlansMatchFullScansOnEveryEngine) {
  struct Shape {
    int64_t lo, hi;
    const char* pattern;
    LikeStrategy strategy;
    const char* label;
  };
  const Shape shapes[] = {
      {5000, 6000, "", LikeStrategy::kAuto, "zone range"},
      {0, 0, "%special requests%", LikeStrategy::kIndex, "text index"},
      {0, 0, "%special requests%", LikeStrategy::kBitmap, "dict bitmap"},
      {0, 0, "%zzyzzx qwqwq%", LikeStrategy::kIndex, "empty postings"},
      {0, 0, "no such string", LikeStrategy::kAuto, "absent code"},
      {static_cast<int64_t>(10 * IndexedTable::kRows),
       static_cast<int64_t>(20 * IndexedTable::kRows), "", LikeStrategy::kAuto,
       "all pruned"},
      {0, static_cast<int64_t>(IndexedTable::kRows), "", LikeStrategy::kAuto,
       "none pruned"},
      {3000, 9000, "%special requests%", LikeStrategy::kIndex,
       "range + text"},
  };
  struct Config {
    EngineKind engine;
    ExecutionStrategy strategy;
    VmDispatch vm_dispatch;
    const char* label;
  };
  const Config configs[] = {
      {EngineKind::kVolcano, ExecutionStrategy::kBytecode,
       VmDispatch::kDefault, "volcano"},
      {EngineKind::kVectorized, ExecutionStrategy::kBytecode,
       VmDispatch::kDefault, "vectorized"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kSwitch, "vm-switch"},
      {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
       VmDispatch::kThreaded, "vm-threaded"},
      {EngineKind::kCompiled, ExecutionStrategy::kOptimized,
       VmDispatch::kDefault, "jit-opt"},
      {EngineKind::kCompiled, ExecutionStrategy::kAdaptive,
       VmDispatch::kDefault, "adaptive"},
  };
  for (const Shape& shape : shapes) {
    // Reference: compiled full scan with pruning disabled.
    QueryProgram ref_program =
        BuildQuery(shape.lo, shape.hi, shape.pattern, shape.strategy);
    QueryRunOptions ref_options;
    ref_options.strategy = ExecutionStrategy::kBytecode;
    ref_options.scan_pruning = false;
    auto reference = engine_->Run(ref_program, ref_options).rows;
    for (const Config& config : configs) {
      QueryProgram program =
          BuildQuery(shape.lo, shape.hi, shape.pattern, shape.strategy);
      QueryRunOptions options;
      options.engine = config.engine;
      options.strategy = config.strategy;
      options.vm_dispatch = config.vm_dispatch;
      auto rows = engine_->Run(program, options).rows;
      EXPECT_EQ(rows, reference)
          << shape.label << " on " << config.label;
    }
  }
}

TEST_F(IndexEndToEndTest, ReportsPruningAndCachesTheDecision) {
  engine_->ClearArtifactCache();
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  const auto before = engine_->ObservabilitySnapshot();

  QueryProgram first = BuildQuery(5000, 6000, "", LikeStrategy::kAuto);
  QueryRunResult r1 = engine_->Run(first, options);
  ASSERT_EQ(r1.pipelines.size(), 1u);
  ASSERT_TRUE(r1.pipelines[0].pruning.analyzed);
  EXPECT_FALSE(r1.pipelines[0].pruning_cache_hit);
  EXPECT_LT(r1.pipelines[0].pruning.selected_rows, IndexedTable::kRows);
  EXPECT_EQ(r1.pipelines[0].tuples,
            r1.pipelines[0].pruning.selected_rows);

  QueryProgram second = BuildQuery(5000, 6000, "", LikeStrategy::kAuto);
  QueryRunResult r2 = engine_->Run(second, options);
  ASSERT_TRUE(r2.pipelines[0].pruning.analyzed);
  EXPECT_TRUE(r2.pipelines[0].pruning_cache_hit);
  EXPECT_EQ(r2.pipelines[0].pruning.selected_rows,
            r1.pipelines[0].pruning.selected_rows);
  EXPECT_EQ(r1.rows, r2.rows);

  // A different literal variant of the same fingerprint must not alias the
  // cached decision (the constants key the pruning variant).
  QueryProgram third = BuildQuery(15000, 16000, "", LikeStrategy::kAuto);
  QueryRunResult r3 = engine_->Run(third, options);
  ASSERT_TRUE(r3.pipelines[0].pruning.analyzed);
  EXPECT_FALSE(r3.pipelines[0].pruning_cache_hit);

  const auto after = engine_->ObservabilitySnapshot();
  EXPECT_GE(after.counter("index.prune_cache_hits") -
                before.counter("index.prune_cache_hits"),
            1u);
  EXPECT_GE(after.counter("index.pruned_pipelines") -
                before.counter("index.pruned_pipelines"),
            3u);
  EXPECT_GT(after.counter("index.rows_pruned") -
                before.counter("index.rows_pruned"),
            0u);
}

}  // namespace
}  // namespace aqe
