#include "simd/simd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace aqe {
namespace {

// Every test here is differential: the scalar tier defines the semantics
// and each higher tier available on the host must produce bit-identical
// results. On machines without AVX2 the forced-level variants clamp to the
// best supported tier, so the comparisons degrade to scalar-vs-scalar
// rather than silently skipping.

std::vector<SimdLevel> AllLevels() {
  return {SimdLevel::kScalar, SimdLevel::kSSE2, SimdLevel::kAVX2};
}

/// A bitmap with the padding contract the probe kernels require.
std::vector<uint8_t> PaddedBitmap(size_t codes, uint32_t match_seed,
                                  int match_percent) {
  std::vector<uint8_t> bitmap(codes + kSimdBitmapPadding, 0);
  std::mt19937 rng(match_seed);
  for (size_t i = 0; i < codes; ++i) {
    bitmap[i] = static_cast<int>(rng() % 100) < match_percent ? 1 : 0;
  }
  return bitmap;
}

template <typename Code>
std::vector<Code> RandomCodes(size_t n, size_t num_codes, uint32_t seed) {
  std::vector<Code> codes(n);
  std::mt19937 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<Code>(rng() % num_codes);
  }
  return codes;
}

TEST(SimdLevelTest, DetectionAndNames) {
  const SimdLevel detected = DetectedSimdLevel();
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()), static_cast<int>(detected));
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSSE2), "sse2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAVX2), "avx2");
#if defined(__x86_64__) || defined(__i386__)
  // Any x86-64 this repo builds on has at least SSE2.
  EXPECT_GE(static_cast<int>(detected), static_cast<int>(SimdLevel::kSSE2));
#endif
}

TEST(SimdBitmapProbeTest, MatchesScalarOnOddLengthsAndSelectivities) {
  const size_t kNumCodes = 1000;
  // Odd lengths exercise every tail-loop path (8-lane AVX2, 4-lane SSE2).
  const std::vector<int> lengths = {0, 1, 3, 4, 5, 7, 8, 9,
                                    15, 16, 17, 31, 33, 1024, 1027};
  for (int match_percent : {0, 3, 50, 97, 100}) {
    const auto bitmap = PaddedBitmap(kNumCodes, 7u, match_percent);
    for (int n : lengths) {
      const auto codes32 =
          RandomCodes<int32_t>(static_cast<size_t>(n), kNumCodes, 11u);
      const auto codes64 =
          RandomCodes<int64_t>(static_cast<size_t>(n), kNumCodes, 13u);
      std::vector<int32_t> ref(static_cast<size_t>(n) + 1, -1);
      const int ref_k = BitmapProbeSelI32At(SimdLevel::kScalar, codes32.data(),
                                            n, bitmap.data(), ref.data());
      std::vector<int32_t> ref64(static_cast<size_t>(n) + 1, -1);
      const int ref64_k = BitmapProbeSelI64At(
          SimdLevel::kScalar, codes64.data(), n, bitmap.data(), ref64.data());
      for (SimdLevel level : AllLevels()) {
        std::vector<int32_t> got(static_cast<size_t>(n) + 1, -1);
        const int k = BitmapProbeSelI32At(level, codes32.data(), n,
                                          bitmap.data(), got.data());
        ASSERT_EQ(k, ref_k) << SimdLevelName(level) << " n=" << n
                            << " pct=" << match_percent;
        for (int i = 0; i < k; ++i) ASSERT_EQ(got[i], ref[i]);

        std::vector<int32_t> got64(static_cast<size_t>(n) + 1, -1);
        const int k64 = BitmapProbeSelI64At(level, codes64.data(), n,
                                            bitmap.data(), got64.data());
        ASSERT_EQ(k64, ref64_k) << SimdLevelName(level) << " n=" << n;
        for (int i = 0; i < k64; ++i) ASSERT_EQ(got64[i], ref64[i]);
      }
    }
  }
}

TEST(SimdBitmapProbeTest, UnalignedInputsMatchScalar) {
  const size_t kNumCodes = 257;
  const auto bitmap = PaddedBitmap(kNumCodes, 3u, 40);
  // Probe through deliberately misaligned views of a larger buffer.
  const auto backing = RandomCodes<int32_t>(4096 + 8, kNumCodes, 17u);
  for (int offset = 0; offset < 8; ++offset) {
    const int32_t* codes = backing.data() + offset;
    const int n = 1021;  // odd on purpose
    std::vector<int32_t> ref(static_cast<size_t>(n), -1);
    const int ref_k = BitmapProbeSelI32At(SimdLevel::kScalar, codes, n,
                                          bitmap.data(), ref.data());
    for (SimdLevel level : AllLevels()) {
      std::vector<int32_t> got(static_cast<size_t>(n), -1);
      const int k =
          BitmapProbeSelI32At(level, codes, n, bitmap.data(), got.data());
      ASSERT_EQ(k, ref_k) << SimdLevelName(level) << " offset=" << offset;
      for (int i = 0; i < k; ++i) ASSERT_EQ(got[i], ref[i]);
    }
  }
}

TEST(SimdBitmapProbeTest, LargeDictionaryOver64KDistinctCodes) {
  // > 64K distinct codes: code values exceed 16 bits, so any kernel that
  // truncated gather indices would diverge from scalar.
  const size_t kNumCodes = 100000;
  const auto bitmap = PaddedBitmap(kNumCodes, 29u, 10);
  const size_t n = 8192;
  auto codes32 = RandomCodes<int32_t>(n, kNumCodes, 31u);
  auto codes64 = RandomCodes<int64_t>(n, kNumCodes, 37u);
  // Force some probes of the very last code (max padding exposure).
  codes32[0] = codes32[n - 1] = static_cast<int32_t>(kNumCodes - 1);
  codes64[0] = codes64[n - 1] = static_cast<int64_t>(kNumCodes - 1);
  std::vector<int32_t> ref(n, -1), ref64(n, -1);
  const int ref_k =
      BitmapProbeSelI32At(SimdLevel::kScalar, codes32.data(),
                          static_cast<int>(n), bitmap.data(), ref.data());
  const int ref64_k =
      BitmapProbeSelI64At(SimdLevel::kScalar, codes64.data(),
                          static_cast<int>(n), bitmap.data(), ref64.data());
  for (SimdLevel level : AllLevels()) {
    std::vector<int32_t> got(n, -1), got64(n, -1);
    const int k = BitmapProbeSelI32At(level, codes32.data(),
                                      static_cast<int>(n), bitmap.data(),
                                      got.data());
    ASSERT_EQ(k, ref_k) << SimdLevelName(level);
    for (int i = 0; i < k; ++i) ASSERT_EQ(got[i], ref[i]);
    const int k64 = BitmapProbeSelI64At(level, codes64.data(),
                                        static_cast<int>(n), bitmap.data(),
                                        got64.data());
    ASSERT_EQ(k64, ref64_k) << SimdLevelName(level);
    for (int i = 0; i < k64; ++i) ASSERT_EQ(got64[i], ref64[i]);
  }
}

TEST(SimdBitmapTestTest, PerLaneResultsMatchScalar) {
  const size_t kNumCodes = 513;
  const auto bitmap = PaddedBitmap(kNumCodes, 41u, 35);
  for (int n : {0, 1, 3, 4, 5, 63, 64, 65, 1024, 1027}) {
    const auto codes = RandomCodes<int64_t>(static_cast<size_t>(n),
                                            kNumCodes, 43u);
    std::vector<int64_t> ref(static_cast<size_t>(n), -1);
    BitmapTestI64At(SimdLevel::kScalar, codes.data(), n, bitmap.data(),
                    ref.data());
    for (SimdLevel level : AllLevels()) {
      std::vector<int64_t> got(static_cast<size_t>(n), -1);
      BitmapTestI64At(level, codes.data(), n, bitmap.data(), got.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], ref[i]) << SimdLevelName(level) << " lane " << i;
      }
    }
  }
}

TEST(SimdFindSubstrTest, MatchesStdFindExhaustively) {
  // Random haystacks over a tiny alphabet (lots of near-matches), every
  // suffix position, needle lengths crossing the 16/32-byte block sizes.
  std::mt19937 rng(59);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t hay_len = 1 + rng() % 200;
    std::string hay(hay_len, 'a');
    for (auto& c : hay) c = static_cast<char>('a' + rng() % 3);
    for (size_t needle_len : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                              size_t{17}, size_t{33}}) {
      if (needle_len > hay_len) continue;
      // Take needles from the haystack (guaranteed hits at varied
      // positions) and mutate some to cover misses.
      for (int probe = 0; probe < 8; ++probe) {
        const size_t at = rng() % (hay_len - needle_len + 1);
        std::string needle = hay.substr(at, needle_len);
        if (probe % 2 == 1) needle[rng() % needle_len] = 'z';
        const size_t expect = hay.find(needle);
        for (SimdLevel level : AllLevels()) {
          const size_t got = FindSubstrAt(level, hay.data(), hay.size(),
                                          needle.data(), needle.size());
          ASSERT_EQ(got == SIZE_MAX ? std::string::npos : got, expect)
              << SimdLevelName(level) << " hay=" << hay
              << " needle=" << needle;
        }
      }
    }
  }
}

TEST(SimdFindSubstrTest, EdgeCases) {
  const std::string hay = "MEDIUM POLISHED COPPER";
  for (SimdLevel level : AllLevels()) {
    // Needle longer than haystack.
    EXPECT_EQ(FindSubstrAt(level, hay.data(), 4, hay.data(), 10), SIZE_MAX);
    // Single-byte needles (memchr path).
    EXPECT_EQ(FindSubstrAt(level, hay.data(), hay.size(), "P", 1), 7u);
    EXPECT_EQ(FindSubstrAt(level, hay.data(), hay.size(), "z", 1), SIZE_MAX);
    // Match exactly at the end.
    EXPECT_EQ(FindSubstrAt(level, hay.data(), hay.size(), "COPPER", 6), 16u);
    // Match at position 0.
    EXPECT_EQ(FindSubstrAt(level, hay.data(), hay.size(), "MEDIUM", 6), 0u);
    // Repeated first/last bytes force the inner memcmp verify.
    const std::string tricky = "aaaabaaaabaaaac";
    EXPECT_EQ(
        FindSubstrAt(level, tricky.data(), tricky.size(), "aaaac", 5), 10u);
  }
}

TEST(SimdFindSubstrTest, LongHaystacksCrossBlockBoundaries) {
  // Needle placed at every position of a long haystack so matches land on
  // every offset within the 16- and 32-byte blocks, including the scalar
  // tail region.
  const size_t hay_len = 300;
  const std::string needle = "XYZW";
  for (size_t at = 0; at + needle.size() <= hay_len; ++at) {
    std::string hay(hay_len, 'x');
    hay.replace(at, needle.size(), needle);
    for (SimdLevel level : AllLevels()) {
      ASSERT_EQ(FindSubstrAt(level, hay.data(), hay.size(), needle.data(),
                             needle.size()),
                at)
          << SimdLevelName(level) << " at=" << at;
    }
  }
}

}  // namespace
}  // namespace aqe
