// Randomized concurrency stress for the task scheduler: many small queries
// submitted from several client threads, with cost-model parameters that
// force adaptive mode switches mid-query, mixed strategies, and mixed
// single-threaded/parallel execution. Every result is checked against a
// plain-C++ reference. Run under TSan in CI (the scheduler, the sharded
// morsel queue and the compile-task handshake are the new concurrency
// surface).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/query_engine.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "runtime/sorter.h"
#include "storage/table.h"

namespace aqe {
namespace {

constexpr int64_t kRows = 120000;
constexpr int64_t kGroups = 40;

class SchedStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    Table* fact = catalog_->CreateTable("fact");
    fact->AddColumn("f_key", DataType::kI64);
    fact->AddColumn("f_value", DataType::kI64);
    for (int64_t i = 0; i < kRows; ++i) {
      fact->column(0).AppendI64((i * 13) % kGroups);
      fact->column(1).AppendI64(i % 997);
    }
    // Reference: SELECT f_key, sum(f_value), count(*) FROM fact
    // WHERE f_key <> 3 GROUP BY f_key ORDER BY f_key.
    std::vector<int64_t> sums(kGroups, 0), counts(kGroups, 0);
    for (int64_t i = 0; i < kRows; ++i) {
      int64_t key = (i * 13) % kGroups;
      if (key == 3) continue;
      sums[static_cast<size_t>(key)] += i % 997;
      counts[static_cast<size_t>(key)]++;
    }
    reference_ = new std::vector<std::vector<int64_t>>();
    for (int64_t g = 0; g < kGroups; ++g) {
      if (counts[static_cast<size_t>(g)] == 0) continue;
      reference_->push_back({g, sums[static_cast<size_t>(g)],
                             counts[static_cast<size_t>(g)]});
    }
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete catalog_;
  }

  static QueryProgram BuildQuery() {
    QueryProgram q("stress_agg");
    int fact = q.DeclareBaseTable("fact");
    int agg = q.DeclareAggSet(2, {0, 0});
    PipelineSpec scan;
    scan.name = "scan fact";
    scan.source_table = fact;
    scan.scan_columns = {0, 1};
    scan.ops.push_back(OpFilter{Ne(Slot(0), I64(3))});
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(0);
    sink.items.push_back({AggKind::kSum, Slot(1), /*checked=*/true});
    sink.items.push_back({AggKind::kCount, nullptr, /*checked=*/false});
    scan.sink = std::move(sink);
    q.AddPipeline(std::move(scan));
    q.AddStep([agg](QueryContext* ctx) {
      AggHashTable merged(2, {0, 0});
      ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
          &merged, [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
      merged.ForEach([ctx](int64_t key, void* payload) {
        const auto* p = static_cast<const int64_t*>(payload);
        ctx->result.push_back({key, p[0], p[1]});
      });
      SortRows(&ctx->result, {{0, false, false}});
    });
    return q;
  }

  /// A per-client option mix; adaptive runs force a mode switch via a
  /// free-compile cost model and an immediate first evaluation.
  static QueryRunOptions RandomOptions(std::mt19937* rng) {
    QueryRunOptions options;
    switch ((*rng)() % 4) {
      case 0:
        options.strategy = ExecutionStrategy::kBytecode;
        break;
      case 1:
        options.strategy = ExecutionStrategy::kUnoptimized;
        break;
      default: {  // half the queries: adaptive with forced switches
        options.strategy = ExecutionStrategy::kAdaptive;
        options.cost_model.unopt_base_seconds = 0;
        options.cost_model.unopt_per_instruction_seconds = 0;
        if ((*rng)() % 2 == 0) {  // sometimes force the second switch too
          options.cost_model.opt_base_seconds = 0;
          options.cost_model.opt_per_instruction_seconds = 0;
        } else {
          options.cost_model.opt_base_seconds = 1e9;
        }
        options.adaptive_first_eval_seconds = 0;
        break;
      }
    }
    options.single_threaded = (*rng)() % 4 == 0;
    return options;
  }

  static Catalog* catalog_;
  static std::vector<std::vector<int64_t>>* reference_;
};

Catalog* SchedStressTest::catalog_ = nullptr;
std::vector<std::vector<int64_t>>* SchedStressTest::reference_ = nullptr;

TEST_F(SchedStressTest, ConcurrentClientsRandomizedModeSwitches) {
  QueryEngine engine(catalog_, /*num_threads=*/3);
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;
  std::atomic<uint64_t> total_switches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<uint32_t>(1234 + c));
      for (int i = 0; i < kQueriesPerClient; ++i) {
        QueryProgram program = BuildQuery();
        QueryRunOptions options = RandomOptions(&rng);
        QueryRunResult result = engine.Run(program, options);
        EXPECT_EQ(result.rows, *reference_)
            << "client " << c << " query " << i << " strategy "
            << ExecutionStrategyName(options.strategy)
            << (options.single_threaded ? " single-threaded" : "");
        for (const PipelineReport& p : result.pipelines) {
          total_switches += p.compiles.size();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  // The forced-compile cost model must have produced real mode switches
  // (kUnoptimized static runs also count one compile each).
  EXPECT_GT(total_switches.load(), 0u);
}

TEST_F(SchedStressTest, PipelinedSubmitBatches) {
  // One client keeps several futures in flight (the Submit API), so query
  // tasks overlap on the scheduler rather than running back to back.
  QueryEngine engine(catalog_, /*num_threads=*/2);
  std::mt19937 rng(99);
  for (int round = 0; round < 4; ++round) {
    std::vector<QueryProgram> programs;
    std::vector<QueryRunOptions> options;
    for (int i = 0; i < 6; ++i) {
      programs.push_back(BuildQuery());
      options.push_back(RandomOptions(&rng));
    }
    std::vector<std::future<QueryRunResult>> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(engine.Submit(programs[static_cast<size_t>(i)],
                                      options[static_cast<size_t>(i)]));
    }
    for (auto& future : futures) {
      EXPECT_EQ(future.get().rows, *reference_);
    }
  }
}

TEST_F(SchedStressTest, AdmissionQueueReleasesInOrder) {
  // Cap concurrency at 1: every query still completes, through the FIFO
  // admission queue.
  QueryEngine engine(catalog_, /*num_threads=*/2);
  engine.set_max_concurrent_queries(1);
  std::vector<QueryProgram> programs;
  for (int i = 0; i < 5; ++i) programs.push_back(BuildQuery());
  std::vector<std::future<QueryRunResult>> futures;
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  for (auto& program : programs) {
    futures.push_back(engine.Submit(program, options));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().rows, *reference_);
  }
}

TEST_F(SchedStressTest, EmptyProgramReturnsEmptyResult) {
  QueryEngine engine(catalog_, /*num_threads=*/1);
  QueryProgram empty("empty");
  QueryRunResult result = engine.Run(empty);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_TRUE(result.pipelines.empty());
}

TEST_F(SchedStressTest, RaisingAdmissionCapReleasesWaiters) {
  QueryEngine engine(catalog_, /*num_threads=*/2);
  engine.set_max_concurrent_queries(1);
  std::vector<QueryProgram> programs;
  for (int i = 0; i < 6; ++i) programs.push_back(BuildQuery());
  std::vector<std::future<QueryRunResult>> futures;
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  for (auto& program : programs) {
    futures.push_back(engine.Submit(program, options));
  }
  // Most queries are parked in the admission queue; raising the cap must
  // release them (they would otherwise drain one slot handoff at a time).
  engine.set_max_concurrent_queries(4);
  for (auto& future : futures) {
    EXPECT_EQ(future.get().rows, *reference_);
  }
}

TEST_F(SchedStressTest, DestroyEngineWithQueriesInFlightBreaksPromises) {
  std::vector<QueryProgram> programs;
  for (int i = 0; i < 6; ++i) programs.push_back(BuildQuery());
  std::vector<std::future<QueryRunResult>> futures;
  {
    QueryEngine engine(catalog_, /*num_threads=*/2);
    engine.set_max_concurrent_queries(2);
    QueryRunOptions options;
    options.strategy = ExecutionStrategy::kBytecode;
    for (auto& program : programs) {
      futures.push_back(engine.Submit(program, options));
    }
    // Engine destroyed here with most queries still queued.
  }
  int completed = 0, broken = 0;
  for (auto& future : futures) {
    try {
      QueryRunResult result = future.get();
      EXPECT_EQ(result.rows, *reference_);
      ++completed;
    } catch (const std::future_error&) {
      ++broken;
    }
  }
  // No future may hang; every one either completed correctly or reports a
  // broken promise.
  EXPECT_EQ(completed + broken, 6);
}

}  // namespace
}  // namespace aqe
