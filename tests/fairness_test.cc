// Fairness and resumption tests for the multi-tenant engine:
//  - differential: the resumable PipelineRun (checkpointing at morsel
//    boundaries, Task::kYield between slices) must produce identical
//    results and mode-switch traces as the pre-refactor blocking
//    controller (the legacy gang-scheduled path, kept as baseline);
//  - starvation stress: a saturated engine running long scans must still
//    admit and complete later-submitted short high-class queries with
//    bounded latency, before the long work finishes;
//  - queue_wait_seconds observability and cache-aware admission
//    overtaking.
// Runs under the ThreadSanitizer CI job (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "adaptive/controller.h"
#include "common/timer.h"
#include "engine/query_engine.h"
#include "exec/function_handle.h"
#include "exec/scheduler.h"
#include "exec/trace.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "runtime/agg_hash_table.h"
#include "sched/scheduler.h"
#include "storage/table.h"

namespace aqe {
namespace {

// --- differential: resumable controller vs legacy blocking path ------------

struct SyntheticPipeline {
  std::atomic<uint64_t> interpreted_tuples{0};
  std::atomic<uint64_t> unopt_tuples{0};

  static void SlowInterp(void* state, uint64_t begin, uint64_t end,
                         const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->interpreted_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 100));
  }
  static void FastUnopt(void* state, uint64_t begin, uint64_t end,
                        const void*) {
    auto* self = static_cast<SyntheticPipeline*>(state);
    self->unopt_tuples += end - begin;
    std::this_thread::sleep_for(std::chrono::nanoseconds((end - begin) * 25));
  }
};

/// Cost-model parameters that force exactly one switch to unoptimized.
CostModelParams ForcedUnoptParams() {
  CostModelParams params;
  params.unopt_base_seconds = 0;
  params.unopt_per_instruction_seconds = 0;
  params.opt_base_seconds = 1e9;  // optimized can never win
  return params;
}

/// The (pipeline, mode) sequence of a trace's compile events — the
/// mode-switch trace the differential compares.
std::vector<std::pair<int, ExecMode>> CompileTrace(const TraceRecorder& trace) {
  std::vector<std::pair<int, ExecMode>> switches;
  for (const TraceRecorder::Event& e : trace.Events()) {
    if (e.kind == TraceRecorder::EventKind::kCompile) {
      switches.emplace_back(e.pipeline, e.mode);
    }
  }
  return switches;
}

TEST(ResumablePipelineTest, StepYieldsBetweenMorselsAndMatchesLegacyTraces) {
  constexpr uint64_t kTuples = 2000000;
  const CostModelParams params = ForcedUnoptParams();

  // Legacy gang-scheduled baseline (the pre-refactor blocking controller).
  TraceRecorder legacy_trace;
  SyntheticPipeline legacy_pipe;
  PipelineRunStats legacy_stats;
  {
    WorkerPool pool(2);
    int marker = 0;
    FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
    PipelineRunner runner(&pool, ExecutionStrategy::kAdaptive, params,
                          &legacy_trace);
    runner.set_first_evaluation_delay_seconds(0);
    PipelineTask task;
    task.handle = &handle;
    task.state = &legacy_pipe;
    task.total_tuples = kTuples;
    task.function_instructions = 1000;
    task.compile = [](ExecMode) -> WorkerFn {
      return &SyntheticPipeline::FastUnopt;
    };
    legacy_stats = runner.Run(task);
  }

  // Resumable controller, stepped manually: every Step is one checkpoint.
  TraceRecorder resumable_trace;
  SyntheticPipeline resumable_pipe;
  PipelineRunStats resumable_stats;
  uint64_t yields = 0;
  {
    TaskScheduler sched(2);
    int marker = 0;
    FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
    PipelineTask task;
    task.handle = &handle;
    task.state = &resumable_pipe;
    task.total_tuples = kTuples;
    task.function_instructions = 1000;
    task.compile = [](ExecMode) -> WorkerFn {
      return &SyntheticPipeline::FastUnopt;
    };
    PipelineRun run(&sched, ExecutionStrategy::kAdaptive, params,
                    &resumable_trace, task, /*single_threaded=*/false,
                    /*first_eval_delay_seconds=*/0);
    while (run.Step() == Task::Status::kYield) {
      ++yields;
      if (run.draining()) run.WaitDrainBriefly();
    }
    EXPECT_TRUE(run.done());
    resumable_stats = run.TakeStats();
  }

  // The controller suspended at every morsel boundary (its shard is a
  // sizeable fraction of the domain at the smallest morsel size).
  EXPECT_GT(yields, 10u);

  // Identical mode-switch traces and final mode...
  EXPECT_EQ(CompileTrace(resumable_trace), CompileTrace(legacy_trace));
  ASSERT_EQ(resumable_stats.compiles.size(), 1u);
  ASSERT_EQ(legacy_stats.compiles.size(), 1u);
  EXPECT_EQ(resumable_stats.compiles[0].first, ExecMode::kUnoptimized);
  EXPECT_EQ(resumable_stats.final_mode, legacy_stats.final_mode);
  // ...and identical results: every tuple processed exactly once.
  EXPECT_EQ(resumable_pipe.interpreted_tuples.load() +
                resumable_pipe.unopt_tuples.load(),
            kTuples);
  EXPECT_EQ(legacy_pipe.interpreted_tuples.load() +
                legacy_pipe.unopt_tuples.load(),
            kTuples);
}

TEST(ResumablePipelineTest, ModeSwitchStateSurvivesSuspension) {
  // Force the compile decision, then stop stepping for a while mid-run: the
  // queued compile claim and the rate epoch must survive the suspension and
  // the switch must still happen when stepping resumes.
  constexpr uint64_t kTuples = 1500000;
  TaskScheduler sched(1);  // controller external: exactly one helper
  SyntheticPipeline pipe;
  int marker = 0;
  FunctionHandle handle(&SyntheticPipeline::SlowInterp, &marker);
  PipelineTask task;
  task.handle = &handle;
  task.state = &pipe;
  task.total_tuples = kTuples;
  task.function_instructions = 1000;
  task.compile = [](ExecMode mode) -> WorkerFn {
    EXPECT_EQ(mode, ExecMode::kUnoptimized);
    return &SyntheticPipeline::FastUnopt;
  };
  PipelineRun run(&sched, ExecutionStrategy::kAdaptive, ForcedUnoptParams(),
                  nullptr, task, /*single_threaded=*/false,
                  /*first_eval_delay_seconds=*/0);
  // Step a handful of morsels, then suspend the controller entirely.
  int steps = 0;
  while (!run.done() && steps < 8) {
    run.Step();
    ++steps;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Resume to completion: the switch recorded exactly once, all tuples seen.
  while (run.Step() == Task::Status::kYield) {
    if (run.draining()) run.WaitDrainBriefly();
  }
  PipelineRunStats stats = run.TakeStats();
  ASSERT_EQ(stats.compiles.size(), 1u);
  EXPECT_EQ(stats.final_mode, ExecMode::kUnoptimized);
  EXPECT_EQ(pipe.interpreted_tuples.load() + pipe.unopt_tuples.load(),
            kTuples);
}

// --- engine-level fairness --------------------------------------------------

/// SELECT key, sum(value) FROM <table> WHERE value <> -1 GROUP BY key:
/// one scan pipeline whose cost scales with the table, tiny result.
QueryProgram BuildScanAggQuery(const char* table, const char* name) {
  QueryProgram q(name);
  int t = q.DeclareBaseTable(table);
  int agg = q.DeclareAggSet(1, {0});
  (void)q.DeclareOutput(2);

  PipelineSpec scan;
  scan.name = "scan";
  scan.source_table = t;
  scan.scan_columns = {0, 1};  // key, value
  scan.ops.push_back(OpFilter{Ne(Slot(1), I64(-1))});
  SinkAgg sink;
  sink.agg = agg;
  sink.key = Slot(0);
  sink.items.push_back({AggKind::kSum, Slot(1), /*checked=*/true});
  scan.sink = std::move(sink);
  q.AddPipeline(std::move(scan));

  q.AddStep([agg](QueryContext* ctx) {
    AggHashTable merged(1, {0});
    ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
        &merged, [](uint32_t slot, int64_t* acc, int64_t v) {
          (void)slot;
          *acc += v;
        });
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.push_back({key, p[0]});
    });
    SortRows(&ctx->result, {{0, false, false}});
  });
  return q;
}

class FairnessTest : public ::testing::Test {
 protected:
  static constexpr int64_t kBigRows = 1200000;
  static constexpr int64_t kTinyRows = 2000;
  static constexpr int kKeys = 7;

  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    for (const auto& [name, rows] :
         {std::pair<const char*, int64_t>{"big", kBigRows},
          std::pair<const char*, int64_t>{"tiny", kTinyRows}}) {
      Table* t = catalog_->CreateTable(name);
      t->AddColumn("key", DataType::kI64);
      t->AddColumn("value", DataType::kI64);
      for (int64_t i = 0; i < rows; ++i) {
        t->column(0).AppendI64(i % kKeys);
        t->column(1).AppendI64(i % 1000);
      }
    }
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static std::vector<std::vector<int64_t>> Reference(const char* table) {
    const Table* t = catalog_->GetTable(table);
    std::vector<int64_t> sums(kKeys, 0);
    for (uint64_t r = 0; r < t->num_rows(); ++r) {
      sums[static_cast<size_t>(t->column(0).GetI64(r))] +=
          t->column(1).GetI64(r);
    }
    std::vector<std::vector<int64_t>> rows;
    for (int k = 0; k < kKeys; ++k) rows.push_back({k, sums[k]});
    return rows;
  }

  static Catalog* catalog_;
};

Catalog* FairnessTest::catalog_ = nullptr;

TEST_F(FairnessTest, ShortHighClassQueriesOvertakeSaturatingScans) {
  // kBytecode keeps the long scans slow and compile-free: pure
  // interpretation, so the only way a short query gets through is genuine
  // slice-level preemption of the long pipelines.
  QueryEngine engine(catalog_, /*num_threads=*/2);
  engine.set_class_weight(3, 8);

  QueryRunOptions long_options;
  long_options.strategy = ExecutionStrategy::kBytecode;
  QueryRunOptions short_options;
  short_options.strategy = ExecutionStrategy::kBytecode;
  short_options.query_class = 3;

  QueryProgram long_query = BuildScanAggQuery("big", "long_scan");
  QueryProgram short_query = BuildScanAggQuery("tiny", "short_scan");
  const auto expect_big = Reference("big");
  const auto expect_tiny = Reference("tiny");

  // Isolated short-query latency (warm: second run is cache-hot).
  double isolated_ms = 0;
  for (int i = 0; i < 3; ++i) {
    QueryRunResult r = engine.Run(short_query, short_options);
    EXPECT_EQ(r.rows, expect_tiny);
    isolated_ms = r.total_seconds * 1e3;  // last (warmest) run
  }

  // Saturate: three long scans, ~600x the total short workload below.
  std::vector<std::future<QueryRunResult>> longs;
  for (int i = 0; i < 3; ++i) {
    longs.push_back(engine.Submit(long_query, long_options));
  }

  // A closed-loop stream of short queries through the saturated engine.
  constexpr int kShorts = 12;
  std::vector<double> short_ms;
  int completed_while_longs_running = 0;
  for (int i = 0; i < kShorts; ++i) {
    QueryRunResult r = engine.Run(short_query, short_options);
    EXPECT_EQ(r.rows, expect_tiny);
    EXPECT_GE(r.queue_wait_seconds, 0.0);
    EXPECT_LE(r.queue_wait_seconds, r.total_seconds + 1e-9);
    short_ms.push_back(r.total_seconds * 1e3);
    bool all_longs_done = true;
    for (auto& f : longs) {
      if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        all_longs_done = false;
        break;
      }
    }
    if (!all_longs_done) ++completed_while_longs_running;
  }

  // The acceptance criterion: later-submitted short queries complete while
  // the earlier long pipelines are still running, on the same workers.
  EXPECT_GE(completed_while_longs_running, kShorts - 2)
      << "short queries did not overtake the long scans";

  // Bounded short-query p99: within a generous multiple of its isolated
  // latency (sanitizers and CI noise included), far below the long scans.
  std::sort(short_ms.begin(), short_ms.end());
  const double p99 = short_ms[short_ms.size() - 1];
  const double bound = std::max(250.0, 40.0 * std::max(isolated_ms, 1.0));
  EXPECT_LT(p99, bound) << "short-class p99 " << p99 << " ms vs isolated "
                        << isolated_ms << " ms";

  for (auto& f : longs) {
    QueryRunResult r = f.get();
    EXPECT_EQ(r.rows, expect_big);
  }
}

TEST_F(FairnessTest, QueueWaitIsObservableUnderAdmissionBacklog) {
  QueryEngine engine(catalog_, /*num_threads=*/1);
  engine.set_max_concurrent_queries(1);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kBytecode;
  QueryProgram query = BuildScanAggQuery("big", "long_scan");

  std::vector<std::future<QueryRunResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.Submit(query, options));
  double previous_wait = -1;
  for (auto& f : futures) {
    QueryRunResult r = f.get();
    EXPECT_LE(r.queue_wait_seconds, r.total_seconds + 1e-9);
    // Later-admitted queries waited at least as long (FIFO within class).
    EXPECT_GE(r.queue_wait_seconds, previous_wait);
    previous_wait = r.queue_wait_seconds;
  }
  // The last query sat behind two full scans: its wait must be visible.
  EXPECT_GT(previous_wait, 0.0);
}

TEST_F(FairnessTest, FullyCachedQueryOvertakesColdInAdmission) {
  QueryEngine engine(catalog_, /*num_threads=*/1);
  engine.set_max_concurrent_queries(1);
  QueryRunOptions options;  // adaptive, artifact cache on

  QueryProgram warm_query = BuildScanAggQuery("tiny", "warm_scan");
  QueryProgram cold_query = BuildScanAggQuery("big", "cold_scan");

  // Warm the tiny plan's artifacts, then occupy the only admission slot.
  engine.Run(warm_query, options);
  QueryRunOptions blocker_options;
  blocker_options.strategy = ExecutionStrategy::kBytecode;
  QueryProgram blocker = BuildScanAggQuery("big", "blocker_scan");
  std::future<QueryRunResult> blocker_future =
      engine.Submit(blocker, blocker_options);

  // Submit cold first, warm second — same class. Cache-aware admission
  // must release the fully-cached warm query first when the slot frees.
  std::future<QueryRunResult> cold_future = engine.Submit(cold_query, options);
  std::future<QueryRunResult> warm_future = engine.Submit(warm_query, options);

  QueryRunResult warm = warm_future.get();
  // The warm query finished; the cold one (admitted after despite its
  // earlier submission) still has a full big-table scan ahead of it.
  EXPECT_NE(cold_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "cold query was admitted ahead of the fully-cached one";
  EXPECT_EQ(warm.rows, Reference("tiny"));
  EXPECT_EQ(cold_future.get().rows, Reference("big"));
  blocker_future.get();
}

}  // namespace
}  // namespace aqe
